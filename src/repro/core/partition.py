"""Partitioned multiprocessor scheduling (paper §7 / ROADMAP sharding).

The paper's admission control, WCRT analysis and allowance treatments
are all uniprocessor.  The first step toward the ROADMAP's sharded
north star is *partitioned* scheduling: every task is statically
assigned to one processor and each processor runs the unchanged
uniprocessor analysis and treatments over its own subset.  No task-level
migration happens at dispatch time — only the explicit, analysed
migrate-on-fault path (:meth:`Partitioner.reassign`) moves a task, and
then only its *future releases*.

Four placement heuristics are provided, all operating on tasks in
decreasing-utilisation order (the classic bin-packing decreasing
variants):

``first-fit``
    lowest-numbered processor whose exact utilisation stays <= 1;
``best-fit``
    fitting processor with the *least* remaining capacity (tightest
    pack; frees whole processors for later heavy tasks);
``worst-fit``
    fitting processor with the *most* remaining capacity (balances
    load; evens out per-processor interference);
``response-time``
    first processor on which the per-processor
    :class:`~repro.core.context.AnalysisContext` *proves* the grown
    subset feasible (exact Lehoczky admission, not the necessary-only
    ``U <= 1`` test).  This is the only heuristic whose partitions are
    feasible by construction.

Utilisation comparisons use exact fractions (``cost/period`` over
integer nanoseconds) — never floats — matching
:meth:`~repro.core.task.TaskSet.utilization_exact`.

This module is the **sole authority over cross-processor assignment
state** (lint rule ``RT009``): code elsewhere must route every
assignment change through :class:`Partitioner` (``admit`` / ``remove`` /
``reassign``) instead of mutating ``assignment``/``subsets`` mappings
directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from types import MappingProxyType
from typing import Iterable, Mapping, Sequence

from repro.core.context import AnalysisContext
from repro.core.feasibility import FeasibilityReport
from repro.core.task import Task, TaskSet

__all__ = [
    "Heuristic",
    "PartitionError",
    "PartitionResult",
    "Partitioner",
    "partition_tasks",
]


class Heuristic(enum.Enum):
    """Placement heuristics over decreasing-utilisation task order."""

    FIRST_FIT = "first-fit"
    BEST_FIT = "best-fit"
    WORST_FIT = "worst-fit"
    RESPONSE_TIME = "response-time"

    @property
    def exact(self) -> bool:
        """Whether admission uses the exact response-time test (True)
        or the necessary-only ``U <= 1`` capacity test (False)."""
        return self is Heuristic.RESPONSE_TIME


class PartitionError(ValueError):
    """No processor can accept a task under the chosen heuristic."""

    def __init__(self, message: str, *, task: str | None = None):
        super().__init__(message)
        self.task = task


def _utilization_key(task: Task) -> tuple[Fraction, int, str]:
    """Sort key: decreasing utilisation, ties by decreasing priority
    then name — fully deterministic for equal-utilisation tasks."""
    return (-Fraction(task.cost, task.period), -task.priority, task.name)


@dataclass(frozen=True)
class PartitionResult:
    """An immutable snapshot of one task-to-processor assignment.

    ``assignment`` maps task name to processor index; ``subsets[p]`` is
    processor *p*'s priority-ordered :class:`~repro.core.task.TaskSet`.
    Snapshots are produced by :func:`partition_tasks` /
    :meth:`Partitioner.result` and never mutated — the live assignment
    authority is the :class:`Partitioner` (rule ``RT009``).
    """

    heuristic: Heuristic
    processors: int
    assignment: Mapping[str, int]
    subsets: tuple[TaskSet, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", MappingProxyType(dict(self.assignment)))

    def processor_of(self, name: str) -> int:
        return self.assignment[name]

    def subset(self, processor: int) -> TaskSet:
        return self.subsets[processor]

    def utilization_exact(self, processor: int) -> Fraction:
        num, den = self.subsets[processor].utilization_exact()
        return Fraction(num, den)

    def utilizations(self) -> tuple[Fraction, ...]:
        return tuple(self.utilization_exact(p) for p in range(self.processors))

    def analyze(self, *, context: AnalysisContext | None = None) -> dict[int, FeasibilityReport]:
        """Per-processor feasibility reports (uniprocessor analysis of
        each subset, optionally served from a shared memo *context*)."""
        ctx = context if context is not None else AnalysisContext(TaskSet(()))
        return {
            p: ctx.analyze_set(self.subsets[p])
            for p in range(self.processors)
            if len(self.subsets[p])
        }

    @property
    def feasible(self) -> bool:
        """Every non-empty subset passes the exact uniprocessor test."""
        return all(report.feasible for report in self.analyze().values())

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form (manifests, exhibits)."""
        return {
            "heuristic": self.heuristic.value,
            "processors": self.processors,
            "assignment": dict(sorted(self.assignment.items())),
        }


class Partitioner:
    """The live, mutable task-to-processor assignment.

    Owns one :class:`~repro.core.context.AnalysisContext` per processor
    (all sharing one exact-input memo), so repeated admission probes —
    the response-time heuristic, migrate-on-fault re-admission, RTSJ
    ``isFeasible`` trials — warm-start instead of re-running the full
    fixed point (DESIGN.md §3.5/§3.6).

    Every cross-processor mutation in the repo flows through ``admit`` /
    ``remove`` / ``reassign`` here; lint rule ``RT009`` rejects direct
    mutation of partition assignment state anywhere else.
    """

    def __init__(
        self,
        processors: int,
        *,
        heuristic: Heuristic = Heuristic.RESPONSE_TIME,
        memo: dict | None = None,
    ):
        if processors <= 0:
            raise ValueError(f"processors must be > 0, got {processors}")
        self.processors = processors
        self.heuristic = heuristic
        self._memo: dict = memo if memo is not None else {}
        self._subsets: list[list[Task]] = [[] for _ in range(processors)]
        self._assignment: dict[str, int] = {}
        self._contexts: list[AnalysisContext | None] = [None] * processors

    # -- queries -------------------------------------------------------------
    @property
    def assignment(self) -> Mapping[str, int]:
        """Read-only view of the current assignment."""
        return MappingProxyType(self._assignment)

    def processor_of(self, name: str) -> int:
        return self._assignment[name]

    def subset(self, processor: int) -> TaskSet:
        return TaskSet(self._subsets[processor])

    def utilization_exact(self, processor: int) -> Fraction:
        num, den = self.subset(processor).utilization_exact()
        return Fraction(num, den)

    def context(self, processor: int) -> AnalysisContext:
        """The processor's warm analysis context (rebuilt lazily after a
        membership change; the exact-input memo is shared, so rebuilt
        contexts keep every previously computed WCRT)."""
        ctx = self._contexts[processor]
        if ctx is None:
            ctx = AnalysisContext(self.subset(processor), memo=self._memo)
            self._contexts[processor] = ctx
        return ctx

    def result(self) -> PartitionResult:
        return PartitionResult(
            heuristic=self.heuristic,
            processors=self.processors,
            assignment=dict(self._assignment),
            subsets=tuple(self.subset(p) for p in range(self.processors)),
        )

    # -- admission -----------------------------------------------------------
    def fits(self, task: Task, processor: int) -> bool:
        """Would *processor* accept *task* under this heuristic's test?"""
        if self.heuristic.exact:
            trial = TaskSet([*self._subsets[processor], task])
            return self.context(processor).is_feasible_set(trial)
        num, den = TaskSet([*self._subsets[processor], task]).utilization_exact()
        return num <= den

    def try_admit(self, task: Task, *, pin: int | None = None) -> int | None:
        """Admit *task* to the processor the heuristic chooses (or the
        pinned one); returns the processor index, or None when no
        processor passes the admission test."""
        if task.name in self._assignment:
            raise ValueError(f"task {task.name!r} is already assigned")
        if pin is not None:
            if not 0 <= pin < self.processors:
                raise ValueError(f"pinned processor {pin} out of range")
            candidates: Sequence[int] = (pin,)
        else:
            candidates = self._candidate_order(task)
        for processor in candidates:
            if self.fits(task, processor):
                self._place(task, processor)
                return processor
        return None

    def admit(self, task: Task, *, pin: int | None = None) -> int:
        """Like :meth:`try_admit`, but a failed admission raises."""
        processor = self.try_admit(task, pin=pin)
        if processor is None:
            where = f"processor {pin}" if pin is not None else f"any of {self.processors} processors"
            raise PartitionError(
                f"{self.heuristic.value}: task {task.name!r} "
                f"(C={task.cost}, T={task.period}) does not fit on {where}",
                task=task.name,
            )
        return processor

    def remove(self, name: str) -> int:
        """Remove the named task; returns the processor it was on."""
        processor = self._assignment.pop(name)
        self._subsets[processor] = [t for t in self._subsets[processor] if t.name != name]
        self._contexts[processor] = None
        return processor

    def reassign(self, name: str, target: int) -> int:
        """Move the named task to *target* — the sanctioned cross-
        processor mutation (migrate-on-fault).  The move is admission-
        checked on the target with the exact response-time test;
        returns the source processor.  Raises :class:`PartitionError`
        when the target cannot take the task."""
        source = self._assignment[name]
        if not 0 <= target < self.processors:
            raise ValueError(f"target processor {target} out of range")
        if target == source:
            return source
        task = next(t for t in self._subsets[source] if t.name == name)
        trial = TaskSet([*self._subsets[target], task])
        if not self.context(target).is_feasible_set(trial):
            raise PartitionError(
                f"cannot reassign {name!r} to processor {target}: subset infeasible",
                task=name,
            )
        self.remove(name)
        self._place(task, target)
        return source

    def least_loaded_feasible(
        self, task: Task, *, exclude: Iterable[int] = ()
    ) -> int | None:
        """The least-utilised processor (ties: lowest index) whose
        subset stays *exactly* feasible with *task* added — the
        migrate-on-fault target — or None when no processor qualifies."""
        skip = set(exclude)
        order = sorted(
            (p for p in range(self.processors) if p not in skip),
            key=lambda p: (self.utilization_exact(p), p),
        )
        for processor in order:
            trial = TaskSet([*self._subsets[processor], task])
            if self.context(processor).is_feasible_set(trial):
                return processor
        return None

    # -- internals -----------------------------------------------------------
    def _place(self, task: Task, processor: int) -> None:
        self._subsets[processor].append(task)
        self._assignment[task.name] = processor
        self._contexts[processor] = None

    def _candidate_order(self, task: Task) -> list[int]:
        pids = range(self.processors)
        if self.heuristic is Heuristic.BEST_FIT:
            # Tightest fit first: most-utilised processor that still fits.
            return sorted(pids, key=lambda p: (-self.utilization_exact(p), p))
        if self.heuristic is Heuristic.WORST_FIT:
            # Most headroom first: least-utilised processor.
            return sorted(pids, key=lambda p: (self.utilization_exact(p), p))
        # FIRST_FIT and RESPONSE_TIME scan processors in index order.
        return list(pids)


def partition_tasks(
    taskset: TaskSet,
    processors: int,
    heuristic: Heuristic = Heuristic.RESPONSE_TIME,
    *,
    pinned: Mapping[str, int] | None = None,
    memo: dict | None = None,
) -> PartitionResult:
    """Partition *taskset* over *processors* with *heuristic*.

    Tasks are placed in decreasing-utilisation order (exact fractions;
    ties broken by priority then name).  *pinned* tasks are placed
    first, on their required processor — the admission test still runs,
    so an infeasible pin raises like any other failed placement.

    Raises :class:`PartitionError` when any task cannot be placed; use
    :class:`Partitioner` directly for incremental / best-effort flows.
    """
    pins = dict(pinned or {})
    unknown = set(pins) - {t.name for t in taskset}
    if unknown:
        raise ValueError(f"pinned unknown tasks: {sorted(unknown)}")
    partitioner = Partitioner(processors, heuristic=heuristic, memo=memo)
    ordered = sorted(taskset, key=_utilization_key)
    for task in ordered:
        if task.name in pins:
            partitioner.admit(task, pin=pins[task.name])
    for task in ordered:
        if task.name not in pins:
            partitioner.admit(task)
    return partitioner.result()
