"""RT099: ``# noqa`` suppressions must actually suppress something."""

from repro.analysis.lint import lint_source


def codes(source, **kwargs):
    return [d.code for d in lint_source(source, "check.py", **kwargs)]


class TestStaleSuppressions:
    def test_used_suppression_is_not_flagged(self):
        src = "import time\n\n\ndef f():\n    return time.time()  # noqa: RT002\n"
        assert codes(src) == []

    def test_unused_code_is_flagged_as_warning(self):
        src = "def f(x):\n    return x  # noqa: RT002\n"
        diags = lint_source(src, "check.py")
        assert [d.code for d in diags] == ["RT099"]
        assert diags[0].severity.value == "warning"
        assert "RT002" in diags[0].message

    def test_partially_stale_list_names_only_the_stale_codes(self):
        src = (
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    return time.time()  # noqa: RT002, RT003\n"
        )
        diags = lint_source(src, "check.py")
        assert [d.code for d in diags] == ["RT099"]
        assert "RT003" in diags[0].message
        assert "RT002" not in diags[0].message

    def test_blanket_noqa_that_suppresses_nothing(self):
        diags = lint_source("x = 1  # noqa\n", "check.py")
        assert [d.code for d in diags] == ["RT099"]
        assert "blanket" in diags[0].message

    def test_blanket_noqa_that_works_is_fine(self):
        src = "import time\n\n\ndef f():\n    return time.time()  # noqa\n"
        assert codes(src) == []

    def test_foreign_tool_codes_are_ignored(self):
        # E731 / F401 belong to other linters; auditing them would make
        # every shared suppression line noisy.
        src = "f = lambda: 0  # noqa: E731\n"
        assert codes(src) == []

    def test_flow_codes_are_not_audited_per_file(self):
        # RT1xx suppressions are consumed by the whole-program pass;
        # a per-file run must not call them stale.
        src = "def f(x):\n    return x  # noqa: RT102\n"
        assert codes(src) == []

    def test_no_staleness_audit_under_select(self):
        # With rules filtered out, "unused" proves nothing.
        src = "def f(x):\n    return x  # noqa: RT002\n"
        assert codes(src, codes=["RT002"]) == []

    def test_noqa_in_docstring_is_not_a_suppression(self):
        src = '"""Docs mention # noqa: RT001 as an example."""\nx = 1\n'
        assert codes(src) == []

    def test_rt099_is_not_self_suppressible(self):
        src = "def f(x):\n    return x  # noqa: RT002, RT099\n"
        diags = lint_source(src, "check.py")
        assert "RT099" in [d.code for d in diags]
