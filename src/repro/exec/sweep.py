"""Resumable population sweeps: frozen specs, chunked execution.

A :class:`SweepSpec` freezes an entire Monte-Carlo experiment — axis
grid × replicates × generator parameters — behind a stable content hash
(the same :func:`repro.rng.stable_hash` discipline as
:class:`~repro.exec.spec.ExperimentSpec`).  Expansion is deterministic:
cells are the cartesian product of the axes in declaration order, each
cell carries ``replicates`` systems, and system ``(cell, r)`` is drawn
by :func:`repro.workloads.population.generate_population` from a key
that never mentions chunking — the same systems appear for any chunk
size or worker count.

Execution reuses the whole exec stack instead of reinventing it: the
sweep expands into ordinary ``ExperimentSpec`` chunks (builder
``"sweep.chunk"``, the sweep definition embedded in ``params``) run by
any :class:`~repro.exec.executor.Executor`.  That buys, for free:

* **content-addressed chunk results** via ``ResultCache`` — a killed
  sweep keeps every finished chunk on disk (executors store results as
  they stream in) and a re-invocation recomputes only the rest;
* **process fan-out** via ``PoolExecutor`` (``--jobs N``);
* **manifests** via :func:`~repro.exec.manifest.build_manifest`, whose
  fingerprint is identical for serial, parallel and batched/exact runs:
  chunk results carry only mode-independent data (the classifier's
  ``eligible`` verdict, never the route actually taken).

Within a chunk, systems the classifier accepts — including the
paper's core fault + treatment workload (injected cost overruns under
detect-only, immediate-stop or equitable-allowance detectors) — run on
the vectorized stepper (:func:`repro.sim.batch.simulate_batch`); the
rest go through the exact engine in :func:`_exact_fallback` — the one
sanctioned per-system ``simulate`` loop in population code (lint rule
RT010) — and each fallback reason feeds a
``sweep_fallback_total{reason=...}`` telemetry counter so coverage
regressions show up on the dashboard.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from functools import partial
from typing import Any, Iterable, Mapping, Sequence

from repro.core.faults import FaultModel, RandomFaults
from repro.core.feasibility import is_feasible
from repro.core.weakly_hard import MKConstraint
from repro.core.treatments import TreatmentKind, TreatmentPlan, plan_treatment
from repro.exec.executor import ExecutionResult, Executor
from repro.exec.manifest import build_manifest, manifest_fingerprint
from repro.exec.sim import run_simulation
from repro.exec.spec import ExperimentSpec
from repro.obs import runtime as obs_runtime
from repro.obs.flight import AnomalyReport
from repro.rng import stable_hash
from repro.sim.batch import JobRecord, classify, sim_job_records, simulate_batch
from repro.workloads.population import PopulationConfig, generate_population

__all__ = [
    "SWEEP_AXES",
    "SweepSpec",
    "PointRecord",
    "SweepChunk",
    "SweepResult",
    "chunk_specs",
    "build_chunk",
    "run_sweep",
    "summarize_cells",
]

#: Axis names a sweep may grid over; anything else is a spec error.
SWEEP_AXES = ("utilization", "n", "deadline_factor", "fault_rate", "treatment")

#: One cell of the axis grid: ``((axis, value), ...)`` in axis order.
Cell = tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class SweepSpec:
    """Frozen description of one population sweep."""

    name: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    replicates: int = 1
    base_seed: int = 0
    #: Generator defaults for axes the grid does not sweep.
    n: int = 4
    utilization: float = 0.7
    deadline_factor: float = 1.0
    period_lo: int = 10_000
    period_hi: int = 1_000_000
    period_granularity: int = 1_000
    #: Horizon = ``horizon_periods`` × the system's largest period.
    horizon_periods: int = 4
    treatment: str | None = None
    fault_rate: float = 0.0
    #: Overrun sizes are uniform on ``[1, fault_scale × min period]``.
    fault_scale: float = 0.5
    feasible_only: bool = False
    #: Optional weakly-hard constraint ``(m, K)`` attached to every
    #: task of every generated system (None = classic hard deadlines).
    #: The weakly-hard treatments need it; it routes treated systems to
    #: the exact engine (classifier reason ``weakly-hard-treatment``).
    mk: tuple[int, int] | None = None
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep needs a name")
        seen = set()
        for axis, values in self.axes:
            if axis not in SWEEP_AXES:
                raise ValueError(
                    f"unknown sweep axis {axis!r}; known: {', '.join(SWEEP_AXES)}"
                )
            if axis in seen:
                raise ValueError(f"duplicate sweep axis {axis!r}")
            seen.add(axis)
            if not values:
                raise ValueError(f"axis {axis!r} needs at least one value")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.horizon_periods < 1:
            raise ValueError("horizon_periods must be >= 1")
        if self.mk is not None:
            MKConstraint(*self.mk)  # validates 1 <= K, 0 <= m <= K

    @classmethod
    def make(
        cls, *, axes: Mapping[str, Sequence[Any]] | None = None, **kwargs: Any
    ) -> "SweepSpec":
        """Build a spec from a plain axes mapping (declaration order is
        preserved — it defines cell enumeration order)."""
        frozen = tuple((name, tuple(values)) for name, values in (axes or {}).items())
        return cls(axes=frozen, **kwargs)

    # -- identity ------------------------------------------------------------
    def canonical(self) -> str:
        parts = [(f.name, getattr(self, f.name)) for f in fields(self)]
        return repr(parts)

    def sweep_hash(self) -> str:
        """Stable content hash (hex), identical in every process."""
        return f"{stable_hash(self.canonical()):08x}"

    # -- expansion -----------------------------------------------------------
    @property
    def cells(self) -> tuple[Cell, ...]:
        names = [axis for axis, _ in self.axes]
        grids = [values for _, values in self.axes]
        return tuple(
            tuple(zip(names, combo)) for combo in itertools.product(*grids)
        )

    @property
    def total_points(self) -> int:
        return len(self.cells) * self.replicates

    def to_params(self) -> dict[str, Any]:
        """The spec as a plain mapping, embeddable in chunk params."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_params(cls, frozen: Iterable[tuple[str, Any]]) -> "SweepSpec":
        """Inverse of :meth:`to_params` after spec param freezing."""
        data = dict(frozen)
        data["axes"] = tuple(
            (str(axis), tuple(values)) for axis, values in data["axes"]
        )
        if data.get("mk") is not None:
            data["mk"] = (int(data["mk"][0]), int(data["mk"][1]))
        return cls(**data)


@dataclass(frozen=True)
class PointRecord:
    """One system's outcome within a sweep — identical whichever
    stepper produced it (the batched==exact contract)."""

    ordinal: int
    cell: Cell
    index: int  # replicate index within the cell
    eligible: bool  # classifier verdict (not the route taken)
    analysis_feasible: bool
    released: int
    completed: int
    misses: int
    stopped: int
    detections: int
    collateral: int
    fingerprint: str

    def describe(self) -> str:
        cell = ",".join(f"{k}={v}" for k, v in self.cell)
        return (
            f"{self.ordinal:6d} [{cell}] r{self.index:03d} "
            f"elig={int(self.eligible)} feas={int(self.analysis_feasible)} "
            f"jobs={self.released} done={self.completed} miss={self.misses} "
            f"stop={self.stopped} det={self.detections} "
            f"coll={self.collateral} fp={self.fingerprint}"
        )


@dataclass(frozen=True)
class SweepChunk:
    """The cached value of one chunk spec."""

    sweep_name: str
    sweep_hash: str
    start: int
    points: tuple[PointRecord, ...]

    def render(self) -> str:
        header = (
            f"sweep {self.sweep_name} [{self.sweep_hash}] "
            f"points {self.start}..{self.start + len(self.points) - 1}"
        )
        return "\n".join([header] + [p.describe() for p in self.points])

    def claims(self) -> list:
        return []


@dataclass
class SweepResult:
    """Everything one sweep run produced."""

    spec: SweepSpec
    results: list[ExecutionResult]
    points: list[PointRecord]
    manifest: dict
    artifacts: dict[str, str]

    def fingerprint(self) -> str:
        return manifest_fingerprint(self.manifest)

    def by_cell(self) -> dict[Cell, list[PointRecord]]:
        cells: dict[Cell, list[PointRecord]] = {}
        for p in self.points:
            cells.setdefault(p.cell, []).append(p)
        return cells


# -- expansion helpers ------------------------------------------------------
def chunk_specs(sweep: SweepSpec) -> list[ExperimentSpec]:
    """The sweep as a list of ordinary executor specs, one per chunk.

    The full sweep definition rides in each chunk's params, so a chunk
    spec is self-contained (and its content hash covers everything that
    can change the result — the resume guarantee)."""
    sweep_params = sweep.to_params()
    specs = []
    for j, lo in enumerate(range(0, sweep.total_points, sweep.chunk_size)):
        count = min(sweep.chunk_size, sweep.total_points - lo)
        specs.append(
            ExperimentSpec.make(
                name=f"{sweep.name}-chunk{j:04d}",
                builder="sweep.chunk",
                seed=sweep.base_seed,
                params={"sweep": sweep_params, "start": lo, "count": count},
            )
        )
    return specs


def _points_slice(
    sweep: SweepSpec, start: int, count: int
) -> list[tuple[int, Cell, int]]:
    """Points ``start .. start + count - 1`` as (ordinal, cell, r)."""
    cells = sweep.cells
    out = []
    for ordinal in range(start, min(start + count, sweep.total_points)):
        cell = cells[ordinal // sweep.replicates]
        out.append((ordinal, cell, ordinal % sweep.replicates))
    return out


def _cell_config(sweep: SweepSpec, cell: Cell) -> PopulationConfig:
    values = dict(cell)
    return PopulationConfig(
        n=int(values.get("n", sweep.n)),
        utilization=float(values.get("utilization", sweep.utilization)),
        deadline_factor=float(values.get("deadline_factor", sweep.deadline_factor)),
        period_lo=sweep.period_lo,
        period_hi=sweep.period_hi,
        period_granularity=sweep.period_granularity,
    )


def _cell_treatment(sweep: SweepSpec, cell: Cell) -> TreatmentKind | None:
    value = dict(cell).get("treatment", sweep.treatment)
    return TreatmentKind(value) if value else None


def _workload_cell(cell: Cell) -> Cell:
    """*cell* without the treatment axis.  The treatment is a response
    to faults, not part of the workload: cells differing only in
    treatment draw the same systems and the same fault pattern, so
    treatment comparisons are paired, not independent samples."""
    return tuple((k, v) for k, v in cell if k != "treatment")


def _cell_faults(sweep: SweepSpec, cell: Cell, r: int, taskset) -> FaultModel | None:
    rate = float(dict(cell).get("fault_rate", sweep.fault_rate))
    if rate == 0.0:
        return None
    max_extra = max(1, int(sweep.fault_scale * min(t.period for t in taskset)))
    return RandomFaults(
        rate=rate,
        max_extra=max_extra,
        seed=stable_hash(sweep.base_seed, "faults", _workload_cell(cell), r),
    )


def _summarize(
    records: tuple[JobRecord, ...], faulty_tasks: frozenset[str]
) -> tuple[int, int, int, int, int, int]:
    """(released, completed, misses, stopped, detections, collateral)
    from the shared record vocabulary — the exact path's summary; the
    batched path reads the same counters off the stepper's arrays, and
    the parity suite pins the two equal, so a point's counters never
    depend on the route taken."""
    released = len(records)
    completed = misses = stopped = detections = 0
    failed = set()
    for r in records:
        if r[3] >= 0 and not r[5]:
            completed += 1
        if r[4]:
            misses += 1
        if r[5]:
            stopped += 1
        if r[6]:
            detections += 1
        if r[4] or r[5]:
            failed.add(r[0])
    collateral = len(failed - faulty_tasks)
    return released, completed, misses, stopped, detections, collateral


def _faulty_tasks(
    taskset, records: tuple[JobRecord, ...], faults: FaultModel | None
) -> frozenset[str]:
    """Tasks whose released jobs were granted demand above the declared
    cost (the paper's definition of the *faulty*, vs collateral, task)."""
    if faults is None:
        return frozenset()
    costs = {t.name: t.cost for t in taskset}
    return frozenset(
        name
        for name, k, *_ in records
        if faults.demand(name, k, costs[name]) > costs[name]
    )


def _exact_fallback(
    work: list[tuple[Any, int, FaultModel | None, TreatmentKind | None]],
) -> list[tuple[tuple[JobRecord, ...], list]]:
    """The classifier fallback: the one sanctioned per-system simulate
    loop in population code (RT010).  Every system the vectorized
    stepper cannot model byte-exactly runs the real engine here.

    Returns ``(records, ring_tail)`` per system: when a flight recorder
    is active, its bounded trace ring is cleared before each simulation
    and the surviving tail captured after, so an anomaly bundle for
    system *i* carries the closing events of *that* system's schedule
    and never a neighbour's.
    """
    cfg = obs_runtime.current()
    ring = cfg.flight.ring if cfg is not None and cfg.flight is not None else None
    out = []
    for taskset, horizon, faults, treatment in work:
        if ring is not None:
            ring.clear()
        result = run_simulation(
            taskset, horizon=horizon, faults=faults, treatment=treatment
        )
        tail = ring.tail() if ring is not None else []
        out.append((sim_job_records(result), tail))
    return out


def build_chunk(spec: ExperimentSpec, stepper: str = "batched") -> SweepChunk:
    """Materialise one chunk spec: generate its systems, route each
    through the classifier, run both paths, summarise.

    *stepper* selects how classifier-eligible systems execute —
    ``"batched"`` (vectorized), ``"exact"`` (per-system engine) or
    ``"verify"`` (batched, then re-run on the exact engine and compare
    record fingerprints, dumping a flight bundle on divergence).  It
    deliberately lives outside the spec: the produced records are
    bit-identical either way, so cached chunks and manifest
    fingerprints are stepper-independent.
    """
    if stepper not in ("batched", "exact", "verify"):
        raise ValueError(f"unknown stepper {stepper!r}")
    sweep = SweepSpec.from_params(spec.param("sweep"))
    start = int(spec.param("start"))
    count = int(spec.param("count"))
    points = _points_slice(sweep, start, count)

    # Generate per cell (contiguous replicate ranges, since points are
    # cell-major) — chunk boundaries never influence the systems.
    systems: list[Any] = []
    for cell, group in itertools.groupby(points, key=lambda p: p[1]):
        rs = [r for _, _, r in group]
        systems.extend(
            generate_population(
                len(rs),
                _cell_config(sweep, cell),
                seed=sweep.base_seed,
                key=("cell",) + tuple(v for _, v in _workload_cell(cell)),
                start=rs[0],
                feasible_only=sweep.feasible_only,
            )
        )
    if sweep.mk is not None:
        # Attach after generation so the drawn systems are identical to
        # the unconstrained sweep's (the mk field never perturbs the
        # generator's stream — comparisons stay paired).
        constraint = MKConstraint(*sweep.mk)
        systems = [
            ts.with_mk({t.name: constraint for t in ts}) for ts in systems
        ]

    horizons = [sweep.horizon_periods * max(t.period for t in ts) for ts in systems]
    faults = [
        _cell_faults(sweep, cell, r, ts)
        for (_, cell, r), ts in zip(points, systems)
    ]
    treatments = [_cell_treatment(sweep, cell) for _, cell, _ in points]
    reasons = [
        classify(ts, faults=f, treatment=t, horizon=h)
        for ts, f, t, h in zip(systems, faults, treatments, horizons)
    ]
    eligible = [reason is None for reason in reasons]

    vector_idx = [i for i, ok in enumerate(eligible) if ok and stepper != "exact"]
    vectored = set(vector_idx)
    exact_idx = [i for i in range(len(systems)) if i not in vectored]
    # Admission gate + detector plans for the vectorized route: the
    # exact engine plans (and thereby admission-checks) every treated
    # system inside ``simulate``, so the batched route runs the same
    # gate here — identical exception on an identical system — and
    # hands the surviving plans' detector offsets to the stepper.
    plans: list[TreatmentPlan | None] = [None] * len(systems)
    for i in vector_idx:
        kind = treatments[i]
        if kind is not None:
            plan = plan_treatment(systems[i], kind)
            if kind.installs_detectors:
                plans[i] = plan
    records: list[tuple[JobRecord, ...] | None] = [None] * len(systems)
    batch_counts: dict[int, tuple[int, int, int, int, int, int]] = {}
    if vector_idx:
        batched = simulate_batch(
            [systems[i] for i in vector_idx],
            [horizons[i] for i in vector_idx],
            faults=[faults[i] for i in vector_idx],
            plans=[plans[i] for i in vector_idx],
        )
        for i, result in zip(vector_idx, batched):
            records[i] = result.records
            # Counters straight from the stepper's arrays — no Python
            # pass over the records.  The stepper-parity suite pins
            # these equal to _summarize on the same records.
            batch_counts[i] = (
                result.released,
                result.completed,
                result.misses,
                result.stopped,
                result.detections,
                result.collateral_task_count,
            )
    tails: dict[int, list] = {}
    if exact_idx:
        exact = _exact_fallback(
            [(systems[i], horizons[i], faults[i], treatments[i]) for i in exact_idx]
        )
        for i, (recs, tail) in zip(exact_idx, exact):
            records[i] = recs
            tails[i] = tail

    cfg = obs_runtime.current()
    flight = cfg.flight if cfg is not None else None

    def _context(ordinal: int, cell: Cell, r: int) -> tuple[tuple[str, Any], ...]:
        return (
            ("sweep", sweep.name),
            ("sweep_hash", sweep.sweep_hash()),
            ("spec_hash", spec.spec_hash()),
            ("ordinal", ordinal),
            ("cell", dict(cell)),
            ("replicate", r),
        )

    if stepper == "verify" and vector_idx:
        # The batch-vs-exact check the classifier's contract rests on:
        # every vectorized system re-runs on the real engine; a record
        # fingerprint mismatch is a stepper bug and gets a bundle.
        verified = _exact_fallback(
            [(systems[i], horizons[i], faults[i], treatments[i]) for i in vector_idx]
        )
        for i, (recs, tail) in zip(vector_idx, verified):
            batched_fp = f"{stable_hash(records[i]):08x}"
            exact_fp = f"{stable_hash(recs):08x}"
            if batched_fp != exact_fp and flight is not None:
                ordinal, cell, r = points[i]
                flight.capture(
                    AnomalyReport(
                        kind="stepper-divergence",
                        detail=(
                            f"vectorized stepper fingerprint {batched_fp} "
                            f"!= exact engine {exact_fp}"
                        ),
                        taskset=systems[i],
                        horizon=horizons[i],
                        faults=faults[i],
                        treatment=(
                            treatments[i].value if treatments[i] is not None else None
                        ),
                        expected_fingerprint=exact_fp,
                        observed_fingerprint=batched_fp,
                        context=_context(ordinal, cell, r),
                    ),
                    events=tail,
                )

    out = []
    for i, (ordinal, cell, r) in enumerate(points):
        recs = records[i]
        assert recs is not None
        if i in batch_counts:
            rel, done, miss, stop, det, coll = batch_counts[i]
        else:
            rel, done, miss, stop, det, coll = _summarize(
                recs, _faulty_tasks(systems[i], recs, faults[i])
            )
        point = PointRecord(
            ordinal=ordinal,
            cell=cell,
            index=r,
            eligible=eligible[i],
            analysis_feasible=is_feasible(systems[i]),
            released=rel,
            completed=done,
            misses=miss,
            stopped=stop,
            detections=det,
            collateral=coll,
            fingerprint=f"{stable_hash(recs):08x}",
        )
        out.append(point)
        if flight is not None and point.analysis_feasible and point.misses > 0:
            # The analysis models declared costs only, so with faults
            # injected this is the expected (and replayable) anomaly;
            # without faults it would be an oracle violation.
            flight.capture(
                AnomalyReport(
                    kind="miss-despite-feasible",
                    detail=(
                        f"analysis-feasible system missed {point.misses} "
                        f"deadline(s) ({point.released} jobs released)"
                    ),
                    taskset=systems[i],
                    horizon=horizons[i],
                    faults=faults[i],
                    treatment=(
                        treatments[i].value if treatments[i] is not None else None
                    ),
                    expected_fingerprint=point.fingerprint,
                    context=_context(ordinal, cell, r),
                ),
                events=tails.get(i, []),
            )

    if cfg is not None and cfg.metrics is not None:
        registry = cfg.metrics.registry
        registry.counter("sweep_chunks_total").inc()
        registry.counter("sweep_points_total").inc(len(out))
        registry.counter("sweep_points_batched_total").inc(len(vector_idx))
        registry.counter("sweep_points_exact_total").inc(len(exact_idx))
        # Per-reason fallback counters (only for reasons that occurred,
        # so fully-vectorized sweeps keep their golden counter set).
        fallback: dict[str, int] = {}
        for reason in reasons:
            if reason is not None:
                fallback[reason] = fallback.get(reason, 0) + 1
        for reason in sorted(fallback):
            registry.counter("sweep_fallback_total", reason=reason).inc(
                fallback[reason]
            )
    return SweepChunk(
        sweep_name=sweep.name,
        sweep_hash=sweep.sweep_hash(),
        start=start,
        points=tuple(out),
    )


def run_sweep(
    sweep: SweepSpec, *, executor: Executor, stepper: str = "batched"
) -> SweepResult:
    """Run every chunk of *sweep* through *executor* and assemble the
    manifest.  Interrupted runs resume for free: finished chunks come
    back from the executor's cache, only the rest recompute."""
    specs = chunk_specs(sweep)
    if executor.progress is not None:
        executor.progress.emit(
            "run_started",
            run=sweep.name,
            sweep_hash=sweep.sweep_hash(),
            total_specs=len(specs),
            total_points=sweep.total_points,
        )
    results = executor.run(specs, partial(build_chunk, stepper=stepper))
    points = [p for r in results for p in r.value.points]
    manifest, artifacts = build_manifest(results, executor=executor)
    if executor.progress is not None:
        executor.progress.emit(
            "run_finished",
            run=sweep.name,
            fingerprint=manifest_fingerprint(manifest),
        )
    return SweepResult(
        spec=sweep,
        results=results,
        points=points,
        manifest=manifest,
        artifacts=artifacts,
    )


def summarize_cells(points: Sequence[PointRecord]) -> list[str]:
    """Per-cell acceptance summary lines (CLI + exhibit rendering)."""
    cells: dict[Cell, list[PointRecord]] = {}
    for p in points:
        cells.setdefault(p.cell, []).append(p)
    lines = []
    for cell, group in cells.items():
        total = len(group)
        feas = sum(1 for p in group if p.analysis_feasible)
        clean = sum(1 for p in group if p.misses == 0 and p.stopped == 0)
        misses = sum(p.misses for p in group)
        stops = sum(p.stopped for p in group)
        dets = sum(p.detections for p in group)
        coll = sum(p.collateral for p in group)
        label = ",".join(f"{k}={v}" for k, v in cell) or "-"
        lines.append(
            f"[{label}] systems={total} analysis-feasible={feas} "
            f"miss-free={clean} misses={misses} stops={stops} "
            f"detections={dets} collateral={coll}"
        )
    return lines
