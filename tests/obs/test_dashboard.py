"""Dashboard rendering: a full run's output directory folds into one
self-contained HTML page whose figures trace back to the manifest."""

import json

import pytest

from repro.exec.cache import ResultCache
from repro.exec.executor import LocalExecutor
from repro.exec.manifest import build_manifest, manifest_fingerprint, write_manifest
from repro.exec.sweep import SweepSpec, build_chunk, chunk_specs
from repro.obs.dashboard import render_dashboard, render_html, wrap_page
from repro.obs.progress import ProgressWriter
from repro.obs.runtime import WorkerObs


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """A real (tiny) sweep run with telemetry, progress and manifest."""
    out = tmp_path_factory.mktemp("out")
    sweep = SweepSpec.make(
        name="dash-sweep",
        axes={"utilization": (0.6, 0.9), "n": (2, 3)},
        replicates=2,
        base_seed=9,
        period_lo=50,
        period_hi=5_000,
        period_granularity=10,
        horizon_periods=2,
        chunk_size=4,
    )
    progress = ProgressWriter(out / "progress.jsonl")
    executor = LocalExecutor(
        cache=ResultCache(out / ".cache"),
        worker_obs=WorkerObs(telemetry=True),
        progress=progress,
    )
    progress.emit("run_started", run=sweep.name, total_specs=2, total_points=8)
    runs = executor.run(chunk_specs(sweep), build_chunk)
    manifest, artifacts = build_manifest(runs, executor=executor)
    write_manifest(out, manifest, artifacts)
    progress.emit(
        "run_finished", run=sweep.name, fingerprint=manifest_fingerprint(manifest)
    )
    progress.close()
    return out


class TestRenderDashboard:
    def test_writes_default_path(self, run_dir):
        path = render_dashboard(run_dir)
        assert path == run_dir / "dashboard.html"
        assert path.exists()

    def test_sections_present(self, run_dir):
        html = render_dashboard(run_dir).read_text()
        for fragment in (
            "<h2>run</h2>",
            "<h2>progress</h2>",
            "<h2>timing</h2>",
            "sweep acceptance",
            "<h2>telemetry</h2>",
            "flight recorder",
            "<h2>exhibits</h2>",
            "<svg",
        ):
            assert fragment in html, fragment

    def test_fingerprint_and_manifest_links(self, run_dir):
        html = render_dashboard(run_dir).read_text()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest_fingerprint(manifest) in html
        for exhibit in manifest["exhibits"]:
            assert f"id='exhibit-{exhibit['name']}'" in html
            assert exhibit["artifact"] in html

    def test_heatmap_covers_every_cell(self, run_dir):
        html = render_dashboard(run_dir).read_text()
        for fragment in ("utilization=0.6", "utilization=0.9", "n=2", "n=3"):
            assert fragment in html

    def test_vectorized_coverage_line(self, run_dir):
        """A fully-batched run reports 100% coverage in the sweep
        section (the counters come from the merged worker telemetry)."""
        html = render_dashboard(run_dir).read_text()
        assert "vectorized coverage" in html
        assert "100.0%" in html
        assert "fallbacks by reason" not in html

    def test_coverage_line_breaks_down_fallback_reasons(self):
        manifest = {
            "exhibits": [],
            "telemetry": {
                "aggregate": {
                    "counters": {
                        "sweep_points_total": 8,
                        "sweep_points_batched_total": 6,
                        "sweep_fallback_total{reason=opaque-fault-model}": 2,
                    },
                    "pids": [1],
                }
            },
        }
        html = render_html(title="t", manifest=manifest)
        assert "75.0%" in html
        assert "opaque-fault-model: 2" in html

    def test_explicit_output_path(self, run_dir, tmp_path):
        target = tmp_path / "nested" / "report.html"
        assert render_dashboard(run_dir, target) == target
        assert target.exists()

    def test_empty_directory_renders_placeholders(self, tmp_path):
        html = render_dashboard(tmp_path).read_text()
        assert "no manifest.json" in html
        assert "no progress.jsonl" in html
        assert "no flight bundles" in html


class TestHtmlHelpers:
    def test_wrap_page_escapes_title(self):
        page = wrap_page("<script>", "body")
        assert "<script>" not in page.split("<body>")[0].replace(
            "<style>", ""
        ).replace("</style>", "")
        assert "&lt;script&gt;" in page

    def test_render_html_escapes_content(self):
        html = render_html(
            title="t",
            manifest={"exhibits": [], "git_rev": "<img src=x>"},
            fingerprint="f" * 64,
        )
        assert "<img src=x>" not in html
        assert "&lt;img src=x&gt;" in html


class TestReportHtml:
    def test_report_page_lists_exhibits(self):
        from repro.experiments.report import generate_html_report

        page = generate_html_report(include_renderings=False)
        assert page.startswith("<!DOCTYPE html>")
        assert "paper claims reproduced" in page
        assert "figure4" in page
