"""``python -m repro.analysis`` — check invariants from the command line.

Usage::

    python -m repro.analysis [paths...] [--format text|json|sarif]
                             [--select RT001,TS003] [--list-rules]
                             [--flow] [--changed-only] [--cache-dir DIR]
                             [--baseline [PATH]] [--write-baseline [PATH]]
                             [--fix]

Paths may be files or directories.  ``.py`` files go through the AST
linter; scenario files (``.scn``/``.scenario``/``.tasks``, or any
non-Python file named explicitly) go through the task-system validator.
With no paths, ``src/repro`` is checked when it exists, else the
current directory.

``--flow`` adds the whole-program pass (RT1xx: cross-module taint,
time-type escapes, rng process escapes, hot-path purity — see
:mod:`repro.analysis.flow`).  ``--changed-only`` (implies ``--flow``)
reuses per-file summaries from a content-hash cache so only edited
files are re-parsed; the hit/miss note goes to stderr.  ``--baseline``
filters the report to findings not in the accepted-findings file, so
legacy debt doesn't fail CI while new findings do; ``--write-baseline``
records the current findings as accepted.  ``--fix`` applies the safe
mechanical autofixes first.

Exit status: 0 when clean or warnings only, 1 when any error-severity
diagnostic was produced (or with ``--strict``, any diagnostic at all),
2 on usage errors.  With ``--baseline``, only non-baselined findings
count.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    render_json,
    render_text,
    sort_key,
)
from repro.analysis.lint import PARSE_ERROR_CODE, all_rules, lint_file
from repro.analysis.taskset import SCENARIO_SUFFIXES, TS_CODES, validate_scenario_file

__all__ = ["main", "check_paths", "discover_targets"]


def discover_targets(
    paths: Sequence[str | Path],
) -> tuple[list[Path], list[Path]]:
    """Split *paths* into ``(python_files, scenario_files)``.

    One discovery pass for both checkers so explicitly named files and
    directory walks behave identically: directories contribute their
    ``.py`` files and their ``SCENARIO_SUFFIXES`` files; an explicit
    ``.py`` path goes to the linter; any other explicit file goes to
    the scenario validator regardless of suffix.  Paths named twice
    (or covered by both a directory and an explicit entry) are checked
    once.
    """
    py_files: list[Path] = []
    scenario_files: list[Path] = []
    seen: set[Path] = set()

    def add(target: list[Path], f: Path) -> None:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            target.append(f)

    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix == ".py":
                    add(py_files, f)
                elif f.suffix in SCENARIO_SUFFIXES:
                    add(scenario_files, f)
        elif p.suffix == ".py":
            add(py_files, p)
        else:
            add(scenario_files, p)
    return py_files, scenario_files


def check_paths(
    paths: Sequence[str | Path], *, codes: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the linter and the task-system validator over *paths*.

    *codes* restricts the report to the given diagnostic codes — the
    filter applies identically to lint (``RT``) and scenario (``TS``)
    findings, whether the file was named explicitly or found by a
    directory walk.
    """
    out: list[Diagnostic] = []
    py_files, scenario_files = discover_targets(paths)
    for py in py_files:
        out.extend(lint_file(py, codes=codes))
    for scn in scenario_files:
        out.extend(validate_scenario_file(scn))
    if codes is not None:
        wanted = {c.upper() for c in codes}
        out = [d for d in out if d.code in wanted]
    return out


def _list_rules() -> str:
    from repro.analysis.flow.rules import FLOW_RULES

    lines = ["code   severity  name"]
    for rule in (*all_rules(), *FLOW_RULES):
        lines.append(f"{rule.code}  {rule.severity.value:8}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)


def _note(message: str) -> None:
    """Diagnostics go to stdout; notes must not corrupt json/sarif."""
    print(message, file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checker: integer-nanosecond time "
        "discipline, determinism, and task-system consistency.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated diagnostic codes to enable (e.g. RT003,TS003)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (per-file and whole-program) and exit",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program RT1xx rules (repro.analysis.flow)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="reuse cached per-file summaries; only files whose content "
        "hash changed are re-parsed (implies --flow)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="incremental summary cache location "
        "(default: .repro-cache/flow)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="filter out findings recorded in the accepted-findings file "
        "(default PATH: analysis-baseline.json); only new findings "
        "affect the exit status",
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="record the current findings as the accepted baseline and exit",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply safe mechanical autofixes (hash-seeded Random -> "
        "derive_rng, stale # noqa removal) before checking",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        paths = [str(default)] if default.is_dir() else ["."]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    for flag, value in (("--baseline", args.baseline), ("--write-baseline", args.write_baseline)):
        if value and Path(value).is_dir():
            # nargs="?" grabs a following positional; catch the classic
            # `--baseline src/repro` mix-up instead of misreading a tree.
            print(
                f"error: {flag} takes a JSON file, got directory {value!r} "
                f"(put paths before {flag}, or use {flag}=PATH)",
                file=sys.stderr,
            )
            return 2

    run_flow = args.flow or args.changed_only

    codes = None
    if args.select:
        from repro.analysis.flow.rules import flow_rule_codes

        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        known = (
            {r.code for r in all_rules()}
            | TS_CODES
            | {PARSE_ERROR_CODE}
            | flow_rule_codes()
        )
        unknown = sorted(set(codes) - known)
        if unknown:
            print(
                f"error: unknown diagnostic code(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2

    if args.fix:
        from repro.analysis.flow.autofix import fix_file

        py_files, _ = discover_targets(paths)
        fixed_files = 0
        for py in py_files:
            fixes = fix_file(py)
            if fixes:
                fixed_files += 1
                for fix in fixes:
                    where = f"{py}:{fix.line}" if fix.line else str(py)
                    _note(f"fixed {where}: {fix.description}")
        _note(f"autofix: {fixed_files} file(s) changed")

    diagnostics = check_paths(paths, codes=codes)

    if run_flow:
        from repro.analysis.flow import FlowCache, analyze
        from repro.analysis.flow.cache import DEFAULT_FLOW_CACHE_DIR

        cache = None
        if args.changed_only:
            cache = FlowCache(args.cache_dir or DEFAULT_FLOW_CACHE_DIR)
        flow_diags, _model = analyze(paths, codes=codes, cache=cache)
        if cache is not None:
            stats = cache.stats
            _note(
                f"flow cache: {stats.hits} reused, "
                f"{stats.misses} re-analyzed"
            )
        diagnostics = sorted([*diagnostics, *flow_diags], key=sort_key)

    if args.write_baseline is not None:
        from repro.analysis.flow.baseline import DEFAULT_BASELINE_PATH, save_baseline

        target = args.write_baseline or DEFAULT_BASELINE_PATH
        count = save_baseline(target, diagnostics)
        _note(f"baseline: wrote {count} accepted finding(s) to {target}")
        return 0

    legacy_count = 0
    if args.baseline is not None:
        from repro.analysis.flow.baseline import (
            DEFAULT_BASELINE_PATH,
            diff_baseline,
            load_baseline,
        )

        source = args.baseline or DEFAULT_BASELINE_PATH
        diff = diff_baseline(diagnostics, load_baseline(source))
        legacy_count = len(diff.legacy)
        if legacy_count:
            _note(
                f"baseline: {legacy_count} accepted finding(s) suppressed "
                f"({source})"
            )
        if diff.resolved:
            _note(
                f"baseline: {diff.resolved} entr{'y' if diff.resolved == 1 else 'ies'} "
                f"no longer fire(s) — re-tighten with --write-baseline"
            )
        diagnostics = diff.new

    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        from repro.analysis.flow.sarif import render_sarif

        print(render_sarif(diagnostics))
    elif diagnostics:
        print(render_text(diagnostics))
    else:
        suffix = " (beyond the baseline)" if legacy_count else ""
        print(f"clean: no diagnostics{suffix}")

    if any(d.severity is Severity.ERROR for d in diagnostics):
        return 1
    if diagnostics and args.strict:
        return 1
    return 0
