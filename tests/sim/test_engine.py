"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, Rank


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        log = []
        eng.schedule(30, lambda: log.append("c"))
        eng.schedule(10, lambda: log.append("a"))
        eng.schedule(20, lambda: log.append("b"))
        eng.run()
        assert log == ["a", "b", "c"]
        assert eng.now == 30

    def test_rank_breaks_ties(self):
        eng = Engine()
        log = []
        eng.schedule(10, lambda: log.append("release"), Rank.RELEASE)
        eng.schedule(10, lambda: log.append("completion"), Rank.COMPLETION)
        eng.schedule(10, lambda: log.append("detector"), Rank.DETECTOR)
        eng.schedule(10, lambda: log.append("deadline"), Rank.DEADLINE_CHECK)
        eng.run()
        assert log == ["completion", "deadline", "detector", "release"]

    def test_fifo_within_same_time_and_rank(self):
        eng = Engine()
        log = []
        for i in range(5):
            eng.schedule(10, lambda i=i: log.append(i))
        eng.run()
        assert log == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule(5, lambda: None)

    def test_schedule_at_now_allowed(self):
        eng = Engine()
        log = []
        eng.schedule(10, lambda: eng.schedule(10, lambda: log.append("nested")))
        eng.run()
        assert log == ["nested"]

    def test_schedule_in(self):
        eng = Engine()
        log = []
        eng.schedule(5, lambda: eng.schedule_in(7, lambda: log.append(eng.now)))
        eng.run()
        assert log == [12]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        log = []
        handle = eng.schedule(10, lambda: log.append("x"))
        handle.cancel()
        eng.run()
        assert log == []

    def test_cancel_from_earlier_event(self):
        eng = Engine()
        log = []
        later = eng.schedule(20, lambda: log.append("later"))
        eng.schedule(10, later.cancel)
        eng.run()
        assert log == []

    def test_peek_skips_cancelled(self):
        eng = Engine()
        h = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        h.cancel()
        assert eng.peek_time() == 20


class TestRunUntil:
    def test_stops_before_later_events(self):
        eng = Engine()
        log = []
        eng.schedule(10, lambda: log.append("early"))
        eng.schedule(100, lambda: log.append("late"))
        eng.run(until=50)
        assert log == ["early"]
        assert eng.now == 50  # clock advanced to the horizon

    def test_event_exactly_at_until_runs(self):
        eng = Engine()
        log = []
        eng.schedule(50, lambda: log.append("edge"))
        eng.run(until=50)
        assert log == ["edge"]

    def test_resume_after_until(self):
        eng = Engine()
        log = []
        eng.schedule(100, lambda: log.append("late"))
        eng.run(until=50)
        eng.run()
        assert log == ["late"]

    def test_step_returns_false_when_empty(self):
        eng = Engine()
        assert not eng.step()
        eng.schedule(1, lambda: None)
        assert eng.step()
        assert not eng.step()

    def test_events_processed_counter(self):
        eng = Engine()
        for t in (1, 2, 3):
            eng.schedule(t, lambda: None)
        eng.run()
        assert eng.events_processed == 3
