"""Static HTML dashboard over a run's output directory.

``python -m repro.obs dashboard out/`` folds everything a run left
behind — ``manifest.json``, the merged ``telemetry`` section, the
``progress.jsonl`` stream, sweep chunk artifacts and flight bundles —
into one self-contained ``dashboard.html``: no JavaScript, no external
assets, just the repo's dependency-free inline-SVG idiom
(:mod:`repro.viz.svg`), so the file renders anywhere and diffs
cleanly.

Sections, each linking back to the manifest entry it was derived from:

* **run** — git revision, manifest fingerprint, executor shape;
* **progress** — the resume-aware summary of the JSONL stream (valid
  even for a killed run);
* **timing** — a per-build waterfall from the merged worker spans
  (pid-coloured), falling back to wall-time bars from the manifest's
  per-spec telemetry;
* **sweep acceptance** — a heatmap over the first two sweep axes,
  shaded by the fraction of miss-free systems per cell, parsed from
  the chunk artifacts the manifest names;
* **telemetry** — merged counters and cache statistics;
* **flight** — every anomaly bundle, with its replay command;
* **exhibits** — every manifest entry with claims verdict and artifact.
"""

from __future__ import annotations

import html
import json
import re
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs.progress import ProgressSummary, summarize_progress

__all__ = ["render_dashboard", "render_html", "wrap_page"]

#: The viz layer's palette (repro.viz.svg) — reused so dashboard
#: figures match the repo's SVG charts.
_COLORS = ["#4878a8", "#c45c4a", "#5a9a6e", "#8a6caa", "#b0883f"]
_GOOD = (0x5A, 0x9A, 0x6E)  # palette green
_BAD = (0xC4, 0x5C, 0x4A)  # palette red

#: One rendered PointRecord line inside a sweep chunk artifact.
_POINT_LINE = re.compile(
    r"^\s*(?P<ordinal>\d+) \[(?P<cell>[^\]]*)\] r(?P<r>\d+) "
    r"elig=(?P<elig>\d) feas=(?P<feas>\d) jobs=(?P<jobs>\d+) "
    r"done=(?P<done>\d+) miss=(?P<miss>\d+) stop=(?P<stop>\d+) "
    r"det=(?P<det>\d+) coll=(?P<coll>\d+) fp=(?P<fp>[0-9a-f]+)$"
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #222; }
h1 { border-bottom: 2px solid #4878a8; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #33506e; }
table { border-collapse: collapse; font-size: .9rem; }
th, td { border: 1px solid #ccd; padding: .25rem .6rem; text-align: left; }
th { background: #eef2f7; }
code { background: #f4f4f6; padding: 0 .25rem; }
.ok { color: #2e7d4f; font-weight: 600; }
.bad { color: #b03a2e; font-weight: 600; }
.muted { color: #777; }
svg { background: #fcfcfd; border: 1px solid #e2e2ea; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def wrap_page(title: str, body: str) -> str:
    """A complete HTML document in the dashboard's house style."""
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body>{body}</body></html>\n"
    )


def _mix(fraction: float) -> str:
    """Colour between palette red (0.0) and palette green (1.0)."""
    f = min(1.0, max(0.0, fraction))
    return "#%02x%02x%02x" % tuple(
        round(b + (g - b) * f) for b, g in zip(_BAD, _GOOD)
    )


# -- data loading -------------------------------------------------------------
def _load_manifest(out_dir: Path) -> dict[str, Any] | None:
    path = out_dir / "manifest.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _load_points(out_dir: Path, manifest: Mapping[str, Any] | None) -> list[dict[str, Any]]:
    """Sweep points parsed back from the chunk artifacts the manifest
    names (falling back to every ``*.txt`` beside it)."""
    if manifest is not None:
        names = [e["artifact"] for e in manifest.get("exhibits", ())]
        files = [out_dir / n for n in names]
    else:
        files = sorted(out_dir.glob("*.txt"))
    points = []
    for path in files:
        if not path.exists():
            continue
        for line in path.read_text().splitlines():
            m = _POINT_LINE.match(line)
            if m is None:
                continue
            cell = {}
            for part in m.group("cell").split(","):
                if "=" in part:
                    key, value = part.split("=", 1)
                    cell[key] = value
            points.append(
                {
                    "ordinal": int(m.group("ordinal")),
                    "cell": cell,
                    "miss": int(m.group("miss")),
                    "stop": int(m.group("stop")),
                    "feasible": m.group("feas") == "1",
                }
            )
    return points


def _find_bundles(out_dir: Path, manifest: Mapping[str, Any] | None) -> list[Path]:
    found: list[Path] = []
    if manifest is not None:
        telemetry = manifest.get("telemetry", {})
        for name in telemetry.get("flight_bundles", ()):
            path = Path(name)
            if path.exists():
                found.append(path)
    for path in sorted(out_dir.rglob("flight-*.json")):
        if path not in found:
            found.append(path)
    return found


# -- figures ------------------------------------------------------------------
def _waterfall_svg(spans: Sequence[Mapping[str, Any]]) -> str:
    """Per-build timing waterfall from merged worker spans (pid-tagged
    start/duration in host ns, offsets shared across processes)."""
    rows = sorted(spans, key=lambda s: int(s["start_ns"]))[:60]
    if not rows:
        return ""
    origin = min(int(s["start_ns"]) for s in rows)
    span_end = max(int(s["start_ns"]) + int(s["dur_ns"]) for s in rows)
    extent = max(1, span_end - origin)
    pids = sorted({s.get("attrs", {}).get("pid", "?") for s in rows})
    width, label_w, row_h = 720, 220, 16
    height = row_h * len(rows) + 24
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-size="11">'
    ]
    for i, span in enumerate(rows):
        start = int(span["start_ns"]) - origin
        dur = int(span["dur_ns"])
        x = label_w + start * (width - label_w - 10) / extent
        w = max(1.0, dur * (width - label_w - 10) / extent)
        pid = span.get("attrs", {}).get("pid", "?")
        color = _COLORS[pids.index(pid) % len(_COLORS)]
        y = 4 + i * row_h
        label = f"{span['name']} (pid {pid})"
        parts.append(
            f'<text x="4" y="{y + 11}" fill="#444">{_esc(label[:34])}</text>'
        )
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{row_h - 4}" '
            f'fill="{color}"><title>{_esc(span["name"])}: '
            f"{dur // 1_000_000} ms</title></rect>"
        )
    total_ms = extent // 1_000_000
    parts.append(
        f'<text x="{label_w}" y="{height - 6}" fill="#777">'
        f"0 .. {total_ms} ms wall</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _wall_bars_svg(specs: Sequence[Mapping[str, Any]]) -> str:
    """Fallback timing figure: wall-time bars from manifest telemetry."""
    rows = list(specs)[:60]
    if not rows:
        return ""
    longest = max((float(s.get("wall_s", 0.0)) for s in rows), default=0.0)
    if longest <= 0:
        return ""
    width, label_w, row_h = 720, 220, 16
    height = row_h * len(rows) + 8
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-size="11">'
    ]
    for i, spec in enumerate(rows):
        wall = float(spec.get("wall_s", 0.0))
        cached = spec.get("source") == "cache"
        w = max(1.0, wall * (width - label_w - 10) / longest)
        y = 4 + i * row_h
        color = "#b9c2cc" if cached else _COLORS[0]
        parts.append(
            f'<text x="4" y="{y + 11}" fill="#444">{_esc(str(spec["name"])[:34])}</text>'
        )
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" height="{row_h - 4}" '
            f'fill="{color}"><title>{_esc(spec["name"])}: {wall:.3f}s'
            f'{" (cache)" if cached else ""}</title></rect>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _heatmap_svg(points: Sequence[Mapping[str, Any]]) -> str:
    """Sweep acceptance heatmap over the first two cell axes: each tile
    shaded by its cell's miss-free fraction."""
    if not points:
        return ""
    axes: list[str] = []
    for p in points:
        for key in p["cell"]:
            if key not in axes:
                axes.append(key)
    if not axes:
        return ""
    x_axis = axes[0]
    y_axis = axes[1] if len(axes) > 1 else None
    cells: dict[tuple[str, str], list[Mapping[str, Any]]] = {}
    for p in points:
        key = (p["cell"].get(x_axis, "-"), p["cell"].get(y_axis, "-") if y_axis else "-")
        cells.setdefault(key, []).append(p)
    xs = sorted({k[0] for k in cells}, key=lambda v: (len(v), v))
    ys = sorted({k[1] for k in cells}, key=lambda v: (len(v), v))
    tile, label_w, label_h = 88, 110, 20
    width = label_w + tile * len(xs) + 10
    height = label_h + tile * len(ys) + 26
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-size="11">'
    ]
    for j, yv in enumerate(ys):
        label = f"{y_axis}={yv}" if y_axis else "all"
        parts.append(
            f'<text x="4" y="{label_h + j * tile + tile // 2}" '
            f'fill="#444">{_esc(label)}</text>'
        )
        for i, xv in enumerate(xs):
            group = cells.get((xv, yv), [])
            if not group:
                continue
            clean = sum(1 for p in group if p["miss"] == 0 and p["stop"] == 0)
            fraction = clean / len(group)
            x = label_w + i * tile
            y = label_h + j * tile
            parts.append(
                f'<rect x="{x}" y="{y}" width="{tile - 4}" height="{tile - 4}" '
                f'fill="{_mix(fraction)}"><title>{_esc(x_axis)}={_esc(xv)}'
                + (f", {_esc(y_axis)}={_esc(yv)}" if y_axis else "")
                + f": {clean}/{len(group)} miss-free</title></rect>"
            )
            parts.append(
                f'<text x="{x + 8}" y="{y + tile // 2}" fill="#fff" '
                f'font-weight="600">{round(100 * fraction)}%</text>'
            )
    for i, xv in enumerate(xs):
        parts.append(
            f'<text x="{label_w + i * tile + 8}" y="{label_h - 6}" '
            f'fill="#444">{_esc(x_axis)}={_esc(xv)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


# -- document -----------------------------------------------------------------
def _section_run(manifest: Mapping[str, Any] | None, fingerprint: str | None) -> list[str]:
    if manifest is None:
        return ["<p class='muted'>no manifest.json in this directory</p>"]
    executor = manifest.get("executor", {})
    stats = manifest.get("stats", {})
    rows = [
        ("git revision", manifest.get("git_rev", "?")),
        ("manifest fingerprint", fingerprint or "?"),
        ("executor", f"{executor.get('kind', '?')} (jobs={executor.get('jobs', '?')})"),
        ("specs", stats.get("specs", "?")),
        (
            "claims",
            f"{stats.get('claims_holding', '?')}/{stats.get('claims', '?')} holding",
        ),
        ("wall time", f"{stats.get('wall_s', '?')} s"),
    ]
    out = ["<table>"]
    for key, value in rows:
        out.append(f"<tr><th>{_esc(key)}</th><td>{_esc(value)}</td></tr>")
    out.append("</table>")
    return out


def _section_progress(summary: ProgressSummary | None) -> list[str]:
    if summary is None:
        return ["<p class='muted'>no progress.jsonl in this directory</p>"]
    out = ["<table>"]
    for line in summary.describe():
        key, _, value = line.partition(": ")
        out.append(f"<tr><th>{_esc(key)}</th><td>{_esc(value)}</td></tr>")
    out.append("</table>")
    return out


def _sweep_coverage_line(manifest: Mapping[str, Any] | None) -> str | None:
    """The sweep section's vectorized-coverage summary: what fraction
    of points took the batched stepper, and — when any fell back to the
    exact engine — the per-reason fallback counts
    (``sweep_fallback_total{reason=...}``), so coverage regressions are
    visible at a glance instead of buried in the counter table."""
    if manifest is None:
        return None
    counters = manifest.get("telemetry", {}).get("aggregate", {}).get("counters", {})
    total = counters.get("sweep_points_total")
    if not total:
        return None
    batched = int(counters.get("sweep_points_batched_total", 0))
    pct = 100.0 * batched / int(total)
    reasons = []
    for key, value in sorted(counters.items()):
        m = re.fullmatch(r"sweep_fallback_total\{reason=(.+)\}", key)
        if m:
            reasons.append(f"{_esc(m.group(1))}: {_esc(value)}")
    line = (
        f"vectorized coverage: <b>{pct:.1f}%</b> "
        f"({batched} of {int(total)} points on the batched stepper)"
    )
    if reasons:
        line += " — exact-engine fallbacks by reason: " + ", ".join(reasons)
    return f"<p>{line}</p>"


def _section_telemetry(manifest: Mapping[str, Any] | None) -> list[str]:
    if manifest is None:
        return []
    telemetry = manifest.get("telemetry", {})
    out = []
    cache = telemetry.get("cache")
    if cache:
        out.append("<h3>cache</h3><table><tr>")
        out.extend(f"<th>{_esc(k)}</th>" for k in sorted(cache))
        out.append("</tr><tr>")
        out.extend(f"<td>{_esc(cache[k])}</td>" for k in sorted(cache))
        out.append("</tr></table>")
    aggregate = telemetry.get("aggregate")
    if aggregate:
        counters = aggregate.get("counters", {})
        if counters:
            out.append(
                f"<h3>merged worker counters "
                f"({len(aggregate.get('pids', []))} worker process(es))</h3>"
            )
            out.append("<table><tr><th>counter</th><th>value</th></tr>")
            for key, value in sorted(counters.items()):
                out.append(
                    f"<tr><td><code>{_esc(key)}</code></td><td>{_esc(value)}</td></tr>"
                )
            out.append("</table>")
    return out


def _section_flight(bundles: Sequence[Path], out_dir: Path) -> list[str]:
    if not bundles:
        return ["<p class='muted'>no flight bundles — no anomalies captured</p>"]
    out = [
        "<table><tr><th>bundle</th><th>kind</th><th>detail</th>"
        "<th>expected fingerprint</th></tr>"
    ]
    for path in bundles:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        try:
            ref = path.relative_to(out_dir)
        except ValueError:
            ref = path
        out.append(
            f"<tr><td><a href='{_esc(ref)}'><code>{_esc(path.name)}</code></a></td>"
            f"<td>{_esc(doc.get('kind', '?'))}</td>"
            f"<td>{_esc(doc.get('detail', ''))}</td>"
            f"<td><code>{_esc(doc.get('expected_fingerprint', ''))}</code></td></tr>"
        )
    out.append("</table>")
    out.append(
        "<p class='muted'>verify any bundle with "
        "<code>python -m repro.obs replay &lt;bundle&gt;</code></p>"
    )
    return out


def _section_exhibits(manifest: Mapping[str, Any] | None) -> list[str]:
    if manifest is None or not manifest.get("exhibits"):
        return []
    out = [
        "<table><tr><th>exhibit</th><th>claims</th><th>artifact</th>"
        "<th>spec hash</th><th>source</th><th>wall s</th></tr>"
    ]
    for e in manifest["exhibits"]:
        ok = e.get("claims_ok", True)
        claims = len(e.get("claims", []))
        verdict = (
            f"<span class='ok'>{claims} hold</span>"
            if ok
            else "<span class='bad'>failing</span>"
        )
        out.append(
            f"<tr id='exhibit-{_esc(e['name'])}'><td>{_esc(e['name'])}</td>"
            f"<td>{verdict}</td>"
            f"<td><a href='{_esc(e['artifact'])}'><code>{_esc(e['artifact'])}</code></a></td>"
            f"<td><code>{_esc(e.get('spec_hash', ''))}</code></td>"
            f"<td>{_esc(e.get('source', '?'))}</td>"
            f"<td>{_esc(e.get('wall_s', '?'))}</td></tr>"
        )
    out.append("</table>")
    return out


def render_html(
    *,
    title: str,
    manifest: Mapping[str, Any] | None = None,
    fingerprint: str | None = None,
    progress: ProgressSummary | None = None,
    points: Sequence[Mapping[str, Any]] = (),
    bundles: Sequence[Path] = (),
    out_dir: Path | None = None,
) -> str:
    """Assemble the dashboard document from already-loaded pieces."""
    telemetry = (manifest or {}).get("telemetry", {})
    spans = (telemetry.get("aggregate") or {}).get("spans", [])
    timing = _waterfall_svg(spans) or _wall_bars_svg(telemetry.get("specs", []))
    body: list[str] = [f"<h1>{_esc(title)}</h1>"]
    body.append("<h2>run</h2>")
    body.extend(_section_run(manifest, fingerprint))
    body.append("<h2>progress</h2>")
    body.extend(_section_progress(progress))
    if timing:
        body.append("<h2>timing</h2>")
        body.append(timing)
    heatmap = _heatmap_svg(points)
    coverage = _sweep_coverage_line(manifest)
    if heatmap or coverage:
        body.append("<h2>sweep acceptance (miss-free fraction per cell)</h2>")
        if coverage:
            body.append(coverage)
        if heatmap:
            body.append(heatmap)
    telemetry_html = _section_telemetry(manifest)
    if telemetry_html:
        body.append("<h2>telemetry</h2>")
        body.extend(telemetry_html)
    body.append("<h2>flight recorder</h2>")
    body.extend(_section_flight(bundles, out_dir or Path(".")))
    exhibits = _section_exhibits(manifest)
    if exhibits:
        body.append("<h2>exhibits</h2>")
        body.extend(exhibits)
    return wrap_page(title, "".join(body))


def render_dashboard(out_dir: str | Path, output: Path | None = None) -> Path:
    """Render ``dashboard.html`` for *out_dir* and return its path."""
    from repro.exec.manifest import manifest_fingerprint

    out_dir = Path(out_dir)
    manifest = _load_manifest(out_dir)
    fingerprint = manifest_fingerprint(manifest) if manifest is not None else None
    progress_path = out_dir / "progress.jsonl"
    progress = summarize_progress(progress_path) if progress_path.exists() else None
    document = render_html(
        title=f"repro dashboard — {out_dir}",
        manifest=manifest,
        fingerprint=fingerprint,
        progress=progress,
        points=_load_points(out_dir, manifest),
        bundles=_find_bundles(out_dir, manifest),
        out_dir=out_dir,
    )
    path = output if output is not None else out_dir / "dashboard.html"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(document)
    return path
