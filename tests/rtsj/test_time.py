"""Unit tests for the RTSJ time types."""

from repro.rtsj.time import AbsoluteTime, HighResolutionTime, RelativeTime


class TestNormalisation:
    def test_nanos_normalised_into_millis(self):
        t = HighResolutionTime(1, 2_500_000)
        assert t.millis == 3 and t.nanos == 500_000

    def test_total_nanos(self):
        assert HighResolutionTime(2, 345).total_nanos == 2_000_345

    def test_from_nanos(self):
        t = HighResolutionTime.from_nanos(5_000_001)
        assert t.millis == 5 and t.nanos == 1

    def test_zero(self):
        assert HighResolutionTime().total_nanos == 0


class TestComparisons:
    def test_equality_across_representations(self):
        assert HighResolutionTime(1, 0) == HighResolutionTime(0, 1_000_000)

    def test_ordering(self):
        assert HighResolutionTime(1, 0) < HighResolutionTime(1, 1)
        assert HighResolutionTime(2, 0) > HighResolutionTime(1, 999_999)

    def test_hash_consistent(self):
        assert hash(HighResolutionTime(1, 0)) == hash(
            HighResolutionTime(0, 1_000_000)
        )


class TestArithmetic:
    def test_relative_add(self):
        a = RelativeTime(200, 0)
        b = RelativeTime(50, 500)
        c = a.add(b)
        assert c.total_nanos == 250_000_500
        assert isinstance(c, RelativeTime)

    def test_relative_subtract(self):
        a = RelativeTime(200, 0)
        assert a.subtract(RelativeTime(70, 0)).total_nanos == 130_000_000

    def test_absolute_add_relative(self):
        t = AbsoluteTime(1000, 0).add(RelativeTime(29, 0))
        assert isinstance(t, AbsoluteTime)
        assert t.millis == 1029

    def test_absolute_difference_is_relative(self):
        d = AbsoluteTime(1029, 0).subtract(AbsoluteTime(1000, 0))
        assert isinstance(d, RelativeTime)
        assert d.millis == 29
