"""Table 3: worst-case response times with cost overruns.

Paper values reproduced exactly: the §4.2 stop thresholds are
WCRT_i + i*A = (40, 80, 120) ms, and the exact recomputation over the
inflated system agrees with the paper's additive closed form on this
system.
"""

from repro.core.allowance import additive_adjusted_wcrt, adjusted_wcrt
from repro.experiments.paper import table3 as table3_experiment
from repro.units import ms

EXPECTED = {"tau1": ms(40), "tau2": ms(80), "tau3": ms(120)}


def test_table3_exact_recomputation(benchmark, table2):
    adjusted = benchmark(adjusted_wcrt, table2, ms(11))
    assert adjusted == EXPECTED


def test_table3_paper_closed_form(benchmark, table2):
    additive = benchmark(additive_adjusted_wcrt, table2, ms(11))
    assert additive == EXPECTED


def test_table3_full_experiment(benchmark):
    result = benchmark(table3_experiment)
    assert all(c.holds for c in result.claims())
    assert result.exact == result.additive == EXPECTED
