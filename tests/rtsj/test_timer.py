"""Unit tests for AsyncEvent/Timer machinery."""

import pytest

from repro.rtsj.params import PeriodicParameters, PriorityParameters
from repro.rtsj.system import RealtimeSystem
from repro.rtsj.thread import RealtimeThread
from repro.rtsj.timer import AsyncEvent, AsyncEventHandler, OneShotTimer, PeriodicTimer
from repro.sim.vm import JRATE_VM
from repro.units import ms


def run_system(system, until=ms(100)):
    # A timer-only system still needs one thread to run.
    t = RealtimeThread(
        PriorityParameters(1), PeriodicParameters(0, ms(50), ms(1)), system, name="bg"
    )
    t.start()
    return system.run(until)


class TestAsyncEvent:
    def test_fire_runs_handlers(self):
        log = []
        ev = AsyncEvent()
        ev.addHandler(AsyncEventHandler(lambda i: log.append(("a", i))))
        ev.addHandler(AsyncEventHandler(lambda i: log.append(("b", i))))
        ev.fire(3)
        assert log == [("a", 3), ("b", 3)]

    def test_remove_handler(self):
        log = []
        ev = AsyncEvent()
        h = AsyncEventHandler(lambda i: log.append(i))
        ev.addHandler(h)
        ev.removeHandler(h)
        ev.fire()
        assert log == []

    def test_fire_count(self):
        h = AsyncEventHandler(lambda i: None)
        ev = AsyncEvent()
        ev.addHandler(h)
        ev.fire()
        ev.fire()
        assert h.fire_count == 2


class TestOneShotTimer:
    def test_fires_once_at_offset(self):
        system = RealtimeSystem()
        fired = []
        timer = OneShotTimer(ms(42), AsyncEventHandler(lambda i: fired.append(i)), system)
        timer.start()
        run_system(system)
        assert fired == [0]

    def test_not_armed_unless_started(self):
        system = RealtimeSystem()
        fired = []
        OneShotTimer(ms(42), AsyncEventHandler(lambda i: fired.append(i)), system)
        run_system(system)
        assert fired == []

    def test_stop_prevents_firing(self):
        system = RealtimeSystem()
        fired = []
        timer = OneShotTimer(ms(42), AsyncEventHandler(lambda i: fired.append(i)), system)
        timer.start()
        timer.stop()
        run_system(system)
        assert fired == []

    def test_beyond_horizon_never_fires(self):
        system = RealtimeSystem()
        fired = []
        timer = OneShotTimer(ms(500), AsyncEventHandler(lambda i: fired.append(i)), system)
        timer.start()
        run_system(system, until=ms(100))
        assert fired == []

    def test_negative_time_rejected(self):
        system = RealtimeSystem()
        with pytest.raises(ValueError):
            OneShotTimer(-1, None, system)

    def test_double_start_rejected(self):
        system = RealtimeSystem()
        timer = OneShotTimer(ms(1), None, system)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()


class TestPeriodicTimer:
    def test_fires_repeatedly_with_index(self):
        system = RealtimeSystem()
        fired = []
        timer = PeriodicTimer(
            ms(29), ms(20), AsyncEventHandler(lambda i: fired.append(i)), system
        )
        timer.start()
        run_system(system, until=ms(100))
        assert fired == [0, 1, 2, 3]

    def test_jrate_rounds_first_release_only(self):
        system = RealtimeSystem(vm=JRATE_VM)
        times = []
        timer = PeriodicTimer(
            ms(29),
            ms(200),
            AsyncEventHandler(lambda i: times.append(system.simulation.engine.now)),
            system,
        )
        timer.start()
        run_system(system, until=ms(500))
        # First release 29 -> 30 (the §6.2 quirk); interval stays exact,
        # so the 1 ms delay is constant: 30, 230, 430.
        assert times == [ms(30), ms(230), ms(430)]

    def test_effective_start_property(self):
        system = RealtimeSystem(vm=JRATE_VM)
        timer = PeriodicTimer(ms(87), ms(100), None, system)
        assert timer.effective_start == ms(90)

    def test_invalid_interval(self):
        system = RealtimeSystem()
        with pytest.raises(ValueError):
            PeriodicTimer(0, 0, None, system)

    def test_stop_mid_run(self):
        system = RealtimeSystem()
        fired = []

        def handler(i):
            fired.append(i)
            if i == 1:
                timer.stop()

        timer = PeriodicTimer(ms(10), ms(10), AsyncEventHandler(handler), system)
        timer.start()
        run_system(system, until=ms(100))
        assert fired == [0, 1]
