"""Trace sinks: JSONL round-trip, chrome conversion, sink plumbing."""

import json

import pytest

from repro.core.treatments import TreatmentKind
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    convert_jsonl_to_chrome,
    iter_jsonl,
    read_jsonl,
    resolve_sink,
    to_chrome,
    trace_with_sink,
    write_jsonl,
)
from repro.sim.simulation import simulate
from repro.sim.trace import (
    EventKind,
    MemorySink,
    NullSink,
    TeeSink,
    Trace,
    TraceEvent,
    TraceSink,
)
from repro.units import ms
from repro.workloads.scenarios import paper_fault, paper_figures_taskset


@pytest.fixture(scope="module")
def fault_run(tmp_path_factory):
    """The paper's Figure 5 scenario (tau1 overruns, immediate stop),
    streamed to a JSONL trace while simulating."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    result = simulate(
        paper_figures_taskset(),
        horizon=ms(1600),
        faults=paper_fault(),
        treatment=TreatmentKind.IMMEDIATE_STOP,
        trace_out=str(path),
    )
    return result, path


class TestEventSerialisation:
    def test_to_dict_from_dict_is_lossless_for_every_kind(self):
        for i, kind in enumerate(EventKind):
            event = TraceEvent(time=i * 17, kind=kind, task=f"tau{i}", job=i - 1, info=i)
            assert TraceEvent.from_dict(event.to_dict()) == event

    def test_defaults_survive_missing_keys(self):
        event = TraceEvent.from_dict({"time": 5, "kind": "release", "task": "tau1"})
        assert event == TraceEvent(5, EventKind.RELEASE, "tau1", job=-1, info=0)


class TestJsonlRoundTrip:
    def test_fault_injection_run_round_trips(self, fault_run):
        result, path = fault_run
        assert read_jsonl(path) == result.trace.events

    def test_round_trip_covers_fault_events(self, fault_run):
        result, path = fault_run
        kinds = {e.kind for e in read_jsonl(path)}
        assert EventKind.FAULT_DETECTED in kinds
        assert EventKind.STOP in kinds

    def test_write_jsonl_inverse(self, tmp_path):
        events = [
            TraceEvent(0, EventKind.RELEASE, "tau1", job=0),
            TraceEvent(3, EventKind.START, "tau1", job=0),
            TraceEvent(9, EventKind.COMPLETE, "tau1", job=0, info=6),
        ]
        count = write_jsonl(tmp_path / "t.jsonl", events)
        assert count == 3
        assert read_jsonl(tmp_path / "t.jsonl") == events

    def test_iter_jsonl_streams(self, fault_run):
        _, path = fault_run
        it = iter_jsonl(path)
        first = next(it)
        assert isinstance(first, TraceEvent)

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit(TraceEvent(0, EventKind.RELEASE, "tau1"))

    def test_file_is_valid_jsonl_mid_run(self, tmp_path):
        # A crashed run must still leave a readable prefix.
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit(TraceEvent(0, EventKind.RELEASE, "tau1"))
        sink.emit(TraceEvent(1, EventKind.START, "tau1"))
        assert len(read_jsonl(tmp_path / "t.jsonl")) == 2
        sink.close()


class TestTracePlumbing:
    def test_sink_receives_every_recorded_event(self):
        sink = MemorySink()
        trace = Trace(sink)
        trace.record(0, EventKind.RELEASE, "tau1", 0)
        trace.record(5, EventKind.COMPLETE, "tau1", 0)
        assert sink.events == trace.events

    def test_retain_false_bounds_memory(self):
        sink = MemorySink()
        trace = Trace(sink, retain=False)
        trace.record(0, EventKind.RELEASE, "tau1", 0)
        assert len(trace) == 0
        assert len(sink.events) == 1

    def test_tee_fans_out(self):
        a, b = MemorySink(), MemorySink()
        tee = TeeSink([a, b])
        tee.emit(TraceEvent(0, EventKind.IDLE, ""))
        assert a.events == b.events != []

    def test_null_sink_discards(self):
        NullSink().emit(TraceEvent(0, EventKind.IDLE, ""))  # no error, no state

    def test_sinks_satisfy_protocol(self, tmp_path):
        assert isinstance(MemorySink(), TraceSink)
        assert isinstance(NullSink(), TraceSink)
        assert isinstance(TeeSink([]), TraceSink)
        assert isinstance(JsonlSink(tmp_path / "a.jsonl"), TraceSink)
        assert isinstance(ChromeTraceSink(tmp_path / "a.json"), TraceSink)

    def test_resolve_sink_by_suffix(self, tmp_path):
        assert isinstance(resolve_sink(tmp_path / "t.jsonl"), JsonlSink)
        assert isinstance(resolve_sink(str(tmp_path / "t.json")), ChromeTraceSink)
        sink = MemorySink()
        assert resolve_sink(sink) is sink
        assert resolve_sink(None) is None

    def test_trace_with_sink(self, tmp_path):
        trace = trace_with_sink(tmp_path / "t.jsonl")
        trace.record(0, EventKind.RELEASE, "tau1", 0)
        trace.close()
        assert len(read_jsonl(tmp_path / "t.jsonl")) == 1

    def test_simulation_owns_path_sinks(self, tmp_path):
        # A path-typed trace_out is resolved and closed by the run; a
        # caller-provided sink object is left open for reuse.
        shared = MemorySink()
        simulate(paper_figures_taskset(), horizon=ms(100), trace_out=shared)
        shared.emit(TraceEvent(0, EventKind.IDLE, ""))  # still usable


_CHROME_REQUIRED = {"name", "ph", "pid", "tid"}


def _validate_chrome(doc):
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    for entry in doc["traceEvents"]:
        assert _CHROME_REQUIRED <= set(entry), entry
        assert entry["ph"] in {"X", "i", "M"}, entry
        if entry["ph"] == "X":
            assert entry["ts"] >= 0 and entry["dur"] >= 0
        elif entry["ph"] == "i":
            assert entry["s"] == "t" and entry["ts"] >= 0
        else:
            assert entry["name"] == "thread_name"
            assert "name" in entry["args"]


class TestChromeTrace:
    def test_schema(self, fault_run):
        result, _ = fault_run
        _validate_chrome(to_chrome(result.trace.events))

    def test_slices_match_execution_intervals(self, fault_run):
        result, _ = fault_run
        doc = to_chrome(result.trace.events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        expected = sum(
            len(result.trace.execution_intervals(t.name))
            for t in paper_figures_taskset()
        )
        assert len(slices) == expected > 0

    def test_document_is_json_serialisable(self, fault_run):
        result, _ = fault_run
        json.dumps(to_chrome(result.trace.events))

    def test_convert_jsonl_to_chrome(self, fault_run, tmp_path):
        _, src = fault_run
        dst = tmp_path / "t.chrome.json"
        count = convert_jsonl_to_chrome(src, dst)
        doc = json.loads(dst.read_text())
        _validate_chrome(doc)
        assert count == len(doc["traceEvents"])

    def test_streaming_sink_equals_offline_conversion(self, fault_run, tmp_path):
        result, _ = fault_run
        sink = ChromeTraceSink(tmp_path / "s.json")
        for event in result.trace.events:
            sink.emit(event)
        sink.close()
        streamed = json.loads((tmp_path / "s.json").read_text())
        offline = to_chrome(result.trace.events)
        _validate_chrome(streamed)
        key = lambda e: (e["ph"], e.get("ts", -1), e["tid"], e["name"])  # noqa: E731
        assert sorted(streamed["traceEvents"], key=key) == sorted(
            offline["traceEvents"], key=key
        )

    def test_emit_after_close_raises(self, tmp_path):
        sink = ChromeTraceSink(tmp_path / "t.json")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit(TraceEvent(0, EventKind.RELEASE, "tau1"))

    def test_span_events_map_to_exec_track(self):
        doc = to_chrome([TraceEvent(100, EventKind.SPAN, "exec:executor.run", info=5000)])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "exec:executor.run"
        assert slices[0]["dur"] == 5.0
