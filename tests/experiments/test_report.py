"""Unit tests for the machine-generated reproduction report."""

from repro.experiments.report import generate_entries, generate_report


class TestReport:
    def test_every_exhibit_reported_and_holding(self):
        entries = generate_entries()
        names = {e.name for e in entries}
        assert {"table2", "figure3", "figure7"} <= names
        for e in entries:
            assert e.ok, f"{e.name}: {e.claims_holding}/{e.claims_total}"

    def test_markdown_shape(self):
        report = generate_report(include_renderings=False)
        assert report.startswith("# Reproduction report")
        assert "| exhibit | claims | verdict |" in report
        assert "paper claims reproduced" in report
        assert "```" not in report

    def test_renderings_included_by_default(self):
        report = generate_report()
        assert "```" in report
        assert "Table 2" in report
