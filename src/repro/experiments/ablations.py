"""Programmatic ablation studies generalising the paper's comparison.

The paper evaluates one hand-built system; these functions sweep the
same questions over seeded random workloads so the conclusions can be
stated with sample sizes:

* :func:`treatment_sweep` — the §6 comparison (who fails, how much
  execution the faulty task gets) over many systems;
* :func:`rounding_sweep` — detection latency vs timer resolution
  (the §6.2 artefact, quantified);
* :func:`allowance_sweep` — tolerance as a function of load;
* :func:`detector_overhead_sweep` — the §6.2 overhead remark ("the
  more tasks in the system, the more sensors"): CPU stolen by
  detector firings as the task count grows.

All functions are deterministic for a given seed and return plain
dataclasses the benchmarks and reports assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.allowance import equitable_allowance, system_allowance
from repro.core.detection import Rounding, RoundingMode
from repro.core.faults import CostOverrun, FaultInjector
from repro.core.feasibility import is_feasible
from repro.core.task import TaskSet
from repro.core.treatments import TreatmentKind
from repro.experiments.metrics import compute_metrics
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind
from repro.sim.vm import VMProfile
from repro.units import MS
from repro.workloads.generator import GeneratorConfig, random_taskset

__all__ = [
    "feasible_pool",
    "TreatmentOutcome",
    "treatment_sweep",
    "RoundingPoint",
    "rounding_sweep",
    "AllowancePoint",
    "allowance_sweep",
    "OverheadPoint",
    "detector_overhead_sweep",
]


def feasible_pool(
    count: int,
    *,
    n: int = 4,
    utilization: float = 0.75,
    deadline_factor: float = 0.9,
    seed: int = 0,
) -> list[TaskSet]:
    """A deterministic pool of feasible random systems."""
    pool: list[TaskSet] = []
    s = seed
    while len(pool) < count:
        ts = random_taskset(
            GeneratorConfig(
                n=n,
                utilization=utilization,
                period_lo=10_000,
                period_hi=1_000_000,
                period_granularity=1_000,
                deadline_factor=deadline_factor,
                seed=s,
            )
        )
        s += 1
        if is_feasible(ts):
            pool.append(ts)
    return pool


@dataclass(frozen=True)
class TreatmentOutcome:
    """Aggregate outcome of one treatment over a pool."""

    treatment: TreatmentKind | None
    systems: int
    collateral_failures: int
    faults_detected: int
    faulty_execution_total: int  # CPU granted to the faulty job, summed

    @property
    def name(self) -> str:
        return self.treatment.value if self.treatment else "no-detection"


def treatment_sweep(
    pool: Sequence[TaskSet],
    treatments: Sequence[TreatmentKind | None],
    *,
    faulty_job: int = 1,
) -> list[TreatmentOutcome]:
    """Run every system in *pool* under every treatment with a
    deadline-sized overrun on its highest-priority task."""
    outcomes = []
    for treatment in treatments:
        collateral = 0
        detected = 0
        granted = 0
        for ts in pool:
            victim = ts.tasks[0]
            faults = FaultInjector([CostOverrun(victim.name, faulty_job, victim.deadline)])
            horizon = (faulty_job + 5) * max(t.period for t in ts)
            res = simulate(ts, horizon=horizon, faults=faults, treatment=treatment)
            m = compute_metrics(res)
            collateral += len(m.collateral_failures)
            detected += m.detections
            job = res.jobs.get((victim.name, faulty_job))
            if job is not None:
                granted += job.executed
        outcomes.append(
            TreatmentOutcome(
                treatment=treatment,
                systems=len(pool),
                collateral_failures=collateral,
                faults_detected=detected,
                faulty_execution_total=granted,
            )
        )
    return outcomes


@dataclass(frozen=True)
class RoundingPoint:
    """Detection latency at one timer resolution."""

    resolution: int
    detection_delay: int  # detection time minus nominal WCRT instant


def rounding_sweep(
    taskset: TaskSet,
    faults: FaultInjector,
    victim: tuple[str, int],
    *,
    horizon: int,
    resolutions: Sequence[int] = (1 * MS, 5 * MS, 10 * MS, 20 * MS, 50 * MS),
) -> list[RoundingPoint]:
    """Measure fault-detection lateness as timers coarsen (§6.2)."""
    # Nominal detection instant: exact-timer run.
    nominal = _detection_time(taskset, faults, victim, horizon, VMProfile(name="exact"))
    points = []
    for res in resolutions:
        vm = VMProfile(
            name=f"res{res}", timer_rounding=Rounding(RoundingMode.UP, res)
        )
        t = _detection_time(taskset, faults, victim, horizon, vm)
        points.append(RoundingPoint(resolution=res, detection_delay=t - nominal))
    return points


def _detection_time(
    taskset: TaskSet,
    faults: FaultInjector,
    victim: tuple[str, int],
    horizon: int,
    vm: VMProfile,
) -> int:
    result = simulate(
        taskset,
        horizon=horizon,
        faults=faults,
        treatment=TreatmentKind.DETECT_ONLY,
        vm=vm,
    )
    for e in result.trace.of_kind(EventKind.FAULT_DETECTED):
        if (e.task, e.job) == victim:
            return e.time
    raise ValueError(f"fault of {victim} not detected within the horizon")


@dataclass(frozen=True)
class AllowancePoint:
    """Tolerance at one utilization level (averaged over a pool)."""

    utilization: float
    mean_equitable: float
    mean_solo: float


def allowance_sweep(
    utilizations: Sequence[float],
    *,
    pool_size: int = 10,
    seed: int = 0,
) -> list[AllowancePoint]:
    """Equitable vs solo allowance as the load grows."""
    points = []
    for u in utilizations:
        pool = feasible_pool(pool_size, utilization=u, deadline_factor=1.0, seed=seed)
        eq_total = 0
        solo_total = 0
        for ts in pool:
            eq_total += equitable_allowance(ts)
            grants: Mapping[str, int] = system_allowance(ts)
            solo_total += sum(grants.values()) // len(grants)
        points.append(
            AllowancePoint(
                utilization=u,
                mean_equitable=eq_total / pool_size,
                mean_solo=solo_total / pool_size,
            )
        )
    return points


@dataclass(frozen=True)
class OverheadPoint:
    """Detector CPU theft at one task count."""

    tasks: int
    detector_fires: int
    stolen_cpu: int
    busy_fraction_increase: float


def detector_overhead_sweep(
    task_counts: Sequence[int],
    *,
    fire_cost: int,
    horizon: int = 2_000_000,
    seed: int = 0,
) -> list[OverheadPoint]:
    """§6.2: "the more tasks in the system, the more sensors, hence the
    higher the influence of this overrun"."""
    points = []
    for n in task_counts:
        (ts,) = feasible_pool(1, n=n, utilization=0.5, deadline_factor=1.0, seed=seed)
        base = simulate(ts, horizon=horizon, treatment=TreatmentKind.DETECT_ONLY)
        vm = VMProfile(name="overhead", detector_fire_cost=fire_cost)
        loaded = simulate(ts, horizon=horizon, treatment=TreatmentKind.DETECT_ONLY, vm=vm)
        fires = len(loaded.trace.of_kind(EventKind.DETECTOR_FIRE))
        points.append(
            OverheadPoint(
                tasks=n,
                detector_fires=fires,
                stolen_cpu=loaded.busy_time - base.busy_time,
                busy_fraction_increase=(loaded.busy_time - base.busy_time) / horizon,
            )
        )
    return points
