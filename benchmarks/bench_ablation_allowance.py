"""Ablation: how much tolerance the allowance policies buy.

Sweeps total utilization and measures the equitable allowance and the
per-task solo allowances.  Shape: allowance decreases monotonically as
load rises (less free time to redistribute) and the solo allowance
always dominates the equitable share — the quantitative backing for
the paper's §4.2-vs-§4.3 discussion.
"""

import pytest

from repro.core.allowance import equitable_allowance, system_allowance
from repro.core.feasibility import is_feasible
from repro.workloads.generator import GeneratorConfig, random_taskset

UTILIZATIONS = (0.3, 0.5, 0.7, 0.85)


def system_at(u: float, seed0: int = 0):
    seed = seed0
    while True:
        ts = random_taskset(
            GeneratorConfig(
                n=4,
                utilization=u,
                period_lo=10_000,
                period_hi=1_000_000,
                period_granularity=1_000,
                deadline_factor=1.0,
                seed=seed,
            )
        )
        if is_feasible(ts):
            return ts
        seed += 1


@pytest.mark.parametrize("u", UTILIZATIONS)
def test_equitable_allowance_vs_utilization(benchmark, u):
    ts = system_at(u)
    allowance = benchmark(equitable_allowance, ts)
    assert allowance >= 0
    # More loaded variants of the same structure have less allowance.
    tighter = ts.inflated(allowance)  # drive to the feasibility edge
    assert equitable_allowance(tighter) == 0


@pytest.mark.parametrize("u", UTILIZATIONS)
def test_solo_allowance_dominates_equitable(benchmark, u):
    ts = system_at(u)

    def run():
        return equitable_allowance(ts), system_allowance(ts)

    eq, solo = benchmark(run)
    assert all(v >= eq for v in solo.values())


def test_allowance_monotone_decreasing_in_load(benchmark):
    """Fix the structure (periods, deadlines, priorities) and scale the
    costs: the equitable allowance must fall as the load rises."""
    base = system_at(0.3)

    def run():
        series = []
        for factor_percent in (100, 130, 160, 190):
            scaled = base.with_costs(
                {t.name: max(1, t.cost * factor_percent // 100) for t in base}
            )
            if is_feasible(scaled):
                series.append(equitable_allowance(scaled))
        return series

    series = benchmark(run)
    assert len(series) >= 2
    assert series == sorted(series, reverse=True)
