"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, rank, seq)``
ordered callbacks on an integer-nanosecond clock.  The *rank* resolves
simultaneous events so scheduling semantics are well-defined:

1. job completions / stops first (a job finishing exactly at a deadline
   or detector check *meets* it — the paper's tests are inclusive),
2. then deadline checks,
3. then detector checks,
4. then job releases,
5. then user/bookkeeping events.

The engine knows nothing about tasks or processors; those live in
:mod:`repro.sim.processor` and :mod:`repro.sim.simulation`.

Heap entries are plain ``(time, rank, seq, handle)`` tuples: tuple
comparison is a single C-level operation, where the previous dataclass
entry paid a Python ``__lt__`` per heap sift step.  ``run`` pops each
event exactly once (the sole event found past the horizon is pushed
back), instead of the peek-then-step double traversal.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Callable, Protocol

__all__ = ["Rank", "EventHandle", "EngineObserver", "Engine"]


class Rank:
    """Tie-break ranks for simultaneous events (lower runs first)."""

    COMPLETION = 0
    STOP = 1
    DEADLINE_CHECK = 2
    DETECTOR = 3
    RELEASE = 4
    USER = 5


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "rank", "action", "cancelled")

    def __init__(self, time: int, rank: int, action: Callable[[], None]):
        self.time = time
        self.rank = rank
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); lazily removed)."""
        self.cancelled = True


class EngineObserver(Protocol):
    """Opt-in dispatch profiler hook (see ``repro.obs.profiler``).

    ``record`` is called after every executed event with the event's
    tie-break rank and the *host* wall time its action took — pure
    diagnostics; simulated time and results are unaffected.
    """

    def record(self, rank: int, wall_ns: int) -> None:
        ...


class Engine:
    """The event loop.

    Events scheduled in the past raise; events at the current time are
    allowed (they run within the current instant, after the event that
    scheduled them, in rank order).

    *profiler* (optional) receives per-event dispatch counts and host
    wall time; the default ``None`` keeps the hot path branch-cheap
    (the run loop is specialised per profiler mode, outside the loop).
    """

    def __init__(self, profiler: EngineObserver | None = None) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, int, EventHandle]] = []
        self._seq = 0
        self._processed = 0
        self._profiler = profiler

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for engine diagnostics)."""
        return self._processed

    def schedule(
        self, time: int, action: Callable[[], None], rank: int = Rank.USER
    ) -> EventHandle:
        """Schedule *action* to run at absolute *time*; returns a handle
        that can be cancelled."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        handle = EventHandle(time, rank, action)
        self._seq += 1
        heappush(self._heap, (time, rank, self._seq, handle))
        return handle

    def schedule_in(
        self, delay: int, action: Callable[[], None], rank: int = Rank.USER
    ) -> EventHandle:
        """Schedule *action* to run *delay* ns from now."""
        return self.schedule(self.now + delay, action, rank)

    def peek_time(self) -> int | None:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            when, rank, _seq, handle = heappop(heap)
            if handle.cancelled:
                continue
            self.now = when
            self._processed += 1
            if self._profiler is None:
                handle.action()
            else:
                t0 = time.perf_counter_ns()  # noqa: RT002 - profiler metadata, not simulated time
                handle.action()
                t1 = time.perf_counter_ns()  # noqa: RT002 - profiler metadata, not simulated time
                self._profiler.record(rank, t1 - t0)
            return True
        return False

    def run(self, until: int | None = None) -> None:
        """Run events until the queue drains or the clock would pass
        *until* (events at exactly *until* are executed).

        Fused loop: each event is popped exactly once — the first event
        found past the horizon is pushed back (its ``(time, rank, seq)``
        key is unchanged, so ordering is preserved) instead of being
        re-discovered by a separate peek pass per event.
        """
        heap = self._heap
        pop = heappop
        profiler = self._profiler
        if profiler is None:
            while heap:
                entry = pop(heap)
                handle = entry[3]
                if handle.cancelled:
                    continue
                when = entry[0]
                if until is not None and when > until:
                    heappush(heap, entry)
                    break
                self.now = when
                self._processed += 1
                handle.action()
        else:
            clock = time.perf_counter_ns
            while heap:
                entry = pop(heap)
                handle = entry[3]
                if handle.cancelled:
                    continue
                when = entry[0]
                if until is not None and when > until:
                    heappush(heap, entry)
                    break
                self.now = when
                self._processed += 1
                t0 = clock()
                handle.action()
                t1 = clock()
                profiler.record(entry[1], t1 - t0)
        if until is not None and until > self.now:
            self.now = until
