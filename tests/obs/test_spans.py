"""Exec-layer spans and the manifest telemetry they feed."""

from repro.exec.cache import ResultCache
from repro.exec.executor import LocalExecutor, PoolExecutor
from repro.exec.manifest import build_manifest, manifest_fingerprint, strip_volatile
from repro.exec.spec import ExperimentSpec
from repro.obs.spans import Span, SpanRecorder
from repro.sim.trace import EventKind


def spec(name):
    return ExperimentSpec.make(name=name, builder="b", params={"n": name})


def builder(s):
    # Module-level and deterministic, so it pickles into pool workers.
    return f"built:{s.name}"


class TestSpanRecorder:
    def test_context_manager_measures(self):
        rec = SpanRecorder()
        with rec.span("work", "exec", detail="x"):
            pass
        assert len(rec) == 1
        span = rec.spans[0]
        assert span.name == "work"
        assert span.dur_ns >= 0
        assert dict(span.attrs) == {"detail": "x"}

    def test_record_clamps_negative(self):
        rec = SpanRecorder()
        span = rec.record("s", "exec", -5, -10)
        assert span.start_ns == 0
        assert span.dur_ns == 0

    def test_as_dicts_sorted_by_start(self):
        rec = SpanRecorder()
        rec.record("late", "exec", 100, 1)
        rec.record("early", "exec", 10, 1)
        assert [d["name"] for d in rec.as_dicts()] == ["early", "late"]

    def test_to_trace_events(self):
        event = Span("run", "exec", start_ns=7, dur_ns=13).to_trace_event()
        assert event.kind is EventKind.SPAN
        assert event.task == "exec:run"
        assert event.time == 7
        assert event.info == 13


class TestExecutorSpans:
    def test_run_and_per_spec_spans_recorded(self):
        rec = SpanRecorder()
        LocalExecutor(spans=rec).run([spec("a"), spec("b")], builder)
        by_cat = {}
        for s in rec.spans:
            by_cat.setdefault(s.category, []).append(s.name)
        assert by_cat["exec"] == ["executor.run"]
        assert sorted(by_cat["spec"]) == ["a", "b"]

    def test_cache_lookup_spans_tag_hit_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        LocalExecutor(cache).run([spec("a")], builder)
        rec = SpanRecorder()
        LocalExecutor(ResultCache(tmp_path), spans=rec).run(
            [spec("a"), spec("new")], builder
        )
        outcomes = {
            s.name: dict(s.attrs)["outcome"] for s in rec.spans if s.category == "cache"
        }
        assert outcomes == {"a": "hit", "new": "miss"}

    def test_timing_fields_on_results(self):
        results = LocalExecutor().run([spec("a"), spec("b")], builder)
        for r in results:
            assert r.ended_ns >= r.started_ns > 0
            assert r.queue_wait_ns >= 0

    def test_cache_hit_has_zero_timing(self, tmp_path):
        cache = ResultCache(tmp_path)
        LocalExecutor(cache).run([spec("a")], builder)
        (result,) = LocalExecutor(ResultCache(tmp_path)).run([spec("a")], builder)
        assert result.from_cache
        assert result.started_ns == result.ended_ns == result.queue_wait_ns == 0


class TestManifestTelemetry:
    def test_telemetry_section_present(self):
        ex = LocalExecutor(spans=SpanRecorder())
        results = ex.run([spec("a"), spec("b")], builder)
        manifest, _ = build_manifest(results, executor=ex)
        telemetry = manifest["telemetry"]
        assert [s["name"] for s in telemetry["specs"]] == ["a", "b"]
        assert all(s["queue_wait_ns"] >= 0 for s in telemetry["specs"])
        assert telemetry["executor"] == {"kind": "local", "jobs": 1}
        assert "hits" in telemetry["cache"]
        assert any(s["category"] == "exec" for s in telemetry["spans"])

    def test_telemetry_is_volatile_stripped(self):
        ex = LocalExecutor(spans=SpanRecorder())
        manifest, _ = build_manifest(ex.run([spec("a")], builder), executor=ex)
        assert "telemetry" not in strip_volatile(manifest)

    def test_fingerprint_identical_serial_vs_pool_with_telemetry(self):
        specs = [spec(str(i)) for i in range(4)]
        serial_ex = LocalExecutor(spans=SpanRecorder())
        pool_ex = PoolExecutor(2, spans=SpanRecorder())
        serial, _ = build_manifest(serial_ex.run(specs, builder), executor=serial_ex)
        pooled, _ = build_manifest(pool_ex.run(specs, builder), executor=pool_ex)
        assert serial["telemetry"] != {} and pooled["telemetry"] != {}
        assert manifest_fingerprint(serial) == manifest_fingerprint(pooled)

    def test_pool_queue_wait_recorded(self):
        specs = [spec(str(i)) for i in range(4)]
        results = PoolExecutor(2, spans=SpanRecorder()).run(specs, builder)
        assert all(r.queue_wait_ns >= 0 for r in results)
