"""Trace-file tooling: ``python -m repro.obs``.

The offline half of the observability layer — the paper's "chart tool
reads the log files" step, for our trace files::

    python -m repro.obs inspect out/t.jsonl          # what's in here?
    python -m repro.obs convert out/t.jsonl --to chrome
    python -m repro.obs summarize out/t.jsonl        # per-task metrics
    python -m repro.obs progress out/progress.jsonl  # sweep progress/ETA
    python -m repro.obs replay out/flight/*.json     # re-run anomaly bundles
    python -m repro.obs dashboard out/               # static HTML report

``convert`` writes ``<file>.chrome.json`` (or ``-o OUT``) loadable by
``chrome://tracing`` / https://ui.perfetto.dev.  ``summarize`` replays
the trace through the metrics observer and prints per-task counters
and response-time statistics.  ``progress`` renders the resume-aware
summary of a progress stream (valid even for a killed run).  ``replay``
rebuilds each flight bundle's system from the bundle alone, re-runs the
exact engine and checks the schedule fingerprint bit-for-bit (exit 1 on
divergence).  ``dashboard`` renders ``dashboard.html`` from the
manifests, telemetry and progress streams in an output directory.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter as TallyCounter
from pathlib import Path

from repro.obs.metrics import MetricsObserver
from repro.obs.progress import render_progress
from repro.obs.sinks import convert_jsonl_to_chrome, iter_jsonl
from repro.viz.tables import format_table

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect, convert and summarize recorded trace files "
        "(JSONL, as written by --trace-out / JsonlSink).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="event counts and a head of the trace")
    p_inspect.add_argument("file")
    p_inspect.add_argument("--limit", type=int, default=10, metavar="N",
                           help="events to print (default: 10)")

    p_convert = sub.add_parser("convert", help="convert a JSONL trace to another format")
    p_convert.add_argument("file")
    p_convert.add_argument("--to", choices=["chrome"], default="chrome",
                           help="target format (default: chrome)")
    p_convert.add_argument("-o", "--output", metavar="OUT",
                           help="output path (default: <file>.chrome.json)")

    p_summarize = sub.add_parser("summarize", help="per-task metrics from a trace file")
    p_summarize.add_argument("file")
    p_summarize.add_argument("--json", action="store_true",
                             help="emit the metrics registry as JSON instead of a table")

    p_progress = sub.add_parser("progress", help="summarize a progress stream")
    p_progress.add_argument("file")

    p_replay = sub.add_parser(
        "replay", help="re-run flight bundles and verify schedule fingerprints"
    )
    p_replay.add_argument("files", nargs="+", metavar="BUNDLE")

    p_dash = sub.add_parser(
        "dashboard", help="render a static HTML dashboard for an output directory"
    )
    p_dash.add_argument("out_dir")
    p_dash.add_argument("-o", "--output", metavar="HTML",
                        help="output path (default: <out_dir>/dashboard.html)")

    args = parser.parse_args(argv)
    if args.command == "replay":
        return _replay([Path(f) for f in args.files])
    if args.command == "dashboard":
        return _dashboard(Path(args.out_dir), args.output)
    src = Path(args.file)
    if not src.exists():
        print(f"error: no such trace file: {src}", file=sys.stderr)
        return 2
    if args.command == "inspect":
        return _inspect(src, args.limit)
    if args.command == "convert":
        out = Path(args.output) if args.output else src.with_suffix(".chrome.json")
        n = convert_jsonl_to_chrome(src, out)
        print(f"wrote {out} ({n} chrome events; open in chrome://tracing)")
        return 0
    if args.command == "progress":
        render_progress(src, sys.stdout)
        return 0
    return _summarize(src, as_json=args.json)


def _replay(paths: list[Path]) -> int:
    from repro.obs.flight import replay

    failures = 0
    for path in paths:
        if not path.exists():
            print(f"error: no such bundle: {path}", file=sys.stderr)
            return 2
        result = replay(path)
        print(result.describe())
        if not result.ok:
            failures += 1
    if len(paths) > 1:
        print(f"{len(paths) - failures}/{len(paths)} bundles reproduced")
    return 1 if failures else 0


def _dashboard(out_dir: Path, output: str | None) -> int:
    from repro.obs.dashboard import render_dashboard

    if not out_dir.is_dir():
        print(f"error: no such output directory: {out_dir}", file=sys.stderr)
        return 2
    path = render_dashboard(out_dir, Path(output) if output else None)
    print(f"wrote {path}")
    return 0


def _inspect(src: Path, limit: int) -> int:
    kinds: TallyCounter[str] = TallyCounter()
    tasks: set[str] = set()
    first: list[str] = []
    total = 0
    end = 0
    for event in iter_jsonl(src):
        total += 1
        kinds[event.kind.value] += 1
        if event.task:
            tasks.add(event.task)
        end = max(end, event.time)
        if len(first) < limit:
            first.append(str(event))
    print(f"{src}: {total} events, {len(tasks)} tasks, end time {end} ns")
    for kind, count in kinds.most_common():
        print(f"  {kind}: {count}")
    if first:
        print(f"first {len(first)} events:")
        for line in first:
            print(f"  {line}")
    return 0


def _summarize(src: Path, *, as_json: bool) -> int:
    registry = MetricsObserver().observe_events(iter_jsonl(src))
    doc = registry.as_dict()
    if as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    tasks = sorted(
        {k.split("task=")[1].rstrip("}") for k in doc["counters"] if "task=" in k}
    )
    rows = []
    for task in tasks:
        def count(name: str) -> int:
            return doc["counters"].get(f"task_{name}_total{{task={task}}}", 0)

        hist = doc["histograms"].get(f"task_response_time_ns{{task={task}}}", {})
        rows.append(
            (
                task,
                count("releases"),
                count("completions"),
                count("stops"),
                count("deadline_misses"),
                count("detector_fires"),
                hist.get("max") if hist.get("max") is not None else "-",
            )
        )
    if not rows:
        print(f"{src}: no task events (spans only?)")
        return 0
    print(
        format_table(
            ["task", "releases", "completions", "stops", "misses", "det.fires", "max resp ns"],
            rows,
            title=f"Trace summary - {src}",
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
