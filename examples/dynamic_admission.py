#!/usr/bin/env python3
"""Dynamic system demo — the paper's §7 future work, implemented.

An online admission controller accepts/rejects tasks "in real-time",
adapting detector offsets on every change; a cost under-run study then
tightens overestimated costs and reclaims allowance for faulty tasks.

Scenario: a surveillance platform starts with two sensor tasks, admits
a video task at runtime (detectors move), rejects an infeasible radar
task, then discovers the video task's cost was overestimated and
reclaims the slack.

Run:  python examples/dynamic_admission.py
"""

from repro import Task, TreatmentKind, ms, to_ms
from repro.core.admission import AdmissionController
from repro.core.faults import CostUnderrun, FaultInjector
from repro.core.underrun import reclaim_allowance
from repro.sim import simulate


def show(result):
    print(f"  -> {result.decision.value}")
    for change in result.detector_changes:
        old = f"{to_ms(change.old_offset):g} ms" if change.old_offset is not None else "-"
        new = f"{to_ms(change.new_offset):g} ms" if change.new_offset is not None else "-"
        print(f"     detector[{change.task_name}] {change.kind}: {old} -> {new}")


controller = AdmissionController(treatment=TreatmentKind.EQUITABLE_ALLOWANCE)

print("t=0: admit the base sensor tasks")
show(controller.request_add(Task("imu", cost=ms(2), period=ms(10), priority=30)))
show(controller.request_add(Task("gps", cost=ms(5), period=ms(50), deadline=ms(25), priority=20)))

print("\nt=1: a video pipeline task arrives at runtime")
show(
    controller.request_add(
        Task("video", cost=ms(30), period=ms(100), deadline=ms(80), priority=10)
    )
)

print("\nt=2: an oversized radar task is rejected (system unchanged)")
show(
    controller.request_add(
        Task("radar", cost=ms(60), period=ms(100), deadline=ms(90), priority=5)
    )
)
assert "radar" not in controller.taskset

print("\nt=3: observe a window of execution - video only uses ~18 ms")
taskset = controller.taskset
faults = FaultInjector(
    [CostUnderrun("video", job, ms(12)) for job in range(20)]
)
result = simulate(taskset, horizon=ms(1000), faults=faults)
study = reclaim_allowance(taskset, result, margin_percent=10)
print(f"  observed costs: { {n: f'{to_ms(v):g} ms' for n, v in study.observed.items()} }")
print(f"  equitable allowance before: {to_ms(study.old_allowance):g} ms")
print(f"  equitable allowance after tightening: {to_ms(study.new_allowance):g} ms")
print(f"  reclaimed for faulty tasks: {to_ms(study.reclaimed):g} ms")
assert study.reclaimed > 0

print("\nt=4: the gps task retires; remaining detectors relax")
show(controller.request_remove("gps"))
