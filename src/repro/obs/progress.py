"""Crash-readable progress streams for long sweeps.

A 10k-system sweep is minutes of silence: the executor streams chunk
results into the cache, but nothing on disk says how far the run got
until the manifest is written at the very end.  A
:class:`ProgressWriter` fixes that with an *append-only JSONL stream* —
one JSON object per event (run started, spec finished, run finished),
line-buffered so the file is valid JSONL at every instant.  A killed
run leaves a readable prefix; a resumed run appends a new segment to
the same file, and because resumed chunks come back from the result
cache as ``source == "cache"`` events, the summary shows exactly which
work was recovered versus recomputed.

Timestamps are integer-nanosecond offsets from the writer's monotonic
origin (``perf_counter_ns`` — host metadata in the sanctioned RT002
sense, never simulated time).  Rates and ETAs are derived with integer
arithmetic only (RT001 applies to host durations too).

Reading side: :func:`summarize_progress` folds a stream — possibly
spanning several resumed segments — into a :class:`ProgressSummary`,
and :func:`render_progress` writes the human version to any text
stream (``python -m repro.obs progress out/progress.jsonl``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterator

__all__ = [
    "ProgressWriter",
    "ProgressSummary",
    "iter_progress",
    "summarize_progress",
    "render_progress",
]


def _rate_per_s(count: int, elapsed_ns: int) -> int:
    """Integer events-per-second (floor; 0 for degenerate spans)."""
    if elapsed_ns <= 0:
        return 0
    return count * 1_000_000_000 // elapsed_ns


class ProgressWriter:
    """Append progress events to *path* as line-buffered JSONL.

    *echo* (optional) receives a short human-readable line per event —
    the live terminal rendering the CLI attaches to stderr.
    """

    def __init__(self, path: str | Path, *, echo: IO[str] | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("a", buffering=1)
        self._echo = echo
        self._origin_ns = time.perf_counter_ns()  # noqa: RT002 - host progress metadata, not simulated time
        self.emitted = 0

    def now_ns(self) -> int:
        """Monotonic offset from this writer's origin."""
        return time.perf_counter_ns() - self._origin_ns  # noqa: RT002 - host progress metadata, not simulated time

    def emit(self, event: str, **fields: Any) -> None:
        if self._fh is None:
            raise ValueError(f"ProgressWriter({self.path}) is closed")
        record = {"event": event, "t_ns": self.now_ns(), **fields}
        json.dump(record, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.emitted += 1
        if self._echo is not None:
            self._echo.write(self._render_line(record))

    def _render_line(self, record: dict[str, Any]) -> str:
        t_s = record["t_ns"] // 1_000_000_000
        event = record["event"]
        detail = " ".join(
            f"{k}={v}" for k, v in record.items() if k not in ("event", "t_ns")
        )
        return f"[{t_s:4d}s] {event} {detail}".rstrip() + "\n"

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def iter_progress(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream events back, skipping a torn final line (crashed writer)."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                return  # torn tail of a killed run — everything before it is valid


@dataclass
class ProgressSummary:
    """What a progress stream says happened (possibly across resumes)."""

    runs: int = 0
    finished: bool = False
    total_specs: int = 0
    total_points: int = 0
    specs_done: int = 0
    computed: int = 0
    cached: int = 0
    points_done: int = 0
    #: Host time the *live segments* spent (sum over segments, ns).
    elapsed_ns: int = 0
    fingerprint: str | None = None

    @property
    def specs_per_s(self) -> int:
        return _rate_per_s(self.computed, self.elapsed_ns)

    @property
    def points_per_s(self) -> int:
        return _rate_per_s(self.points_done, self.elapsed_ns)

    def eta_ns(self) -> int | None:
        """Projected host-time to finish the declared remaining work,
        from the observed per-spec pace (None when it cannot be known)."""
        remaining = self.total_specs - self.specs_done
        if self.finished or remaining <= 0:
            return 0
        if self.computed == 0 or self.elapsed_ns <= 0:
            return None
        return remaining * self.elapsed_ns // self.computed

    def describe(self) -> list[str]:
        done = self.specs_done
        lines = [
            f"runs: {self.runs} ({'finished' if self.finished else 'in progress / interrupted'})",
            f"specs: {done}/{self.total_specs or '?'} done "
            f"({self.computed} computed, {self.cached} from cache)",
        ]
        if self.total_points or self.points_done:
            lines.append(
                f"points: {self.points_done}/{self.total_points or '?'}"
                + (f" ({self.points_per_s}/s)" if self.points_per_s else "")
            )
        lines.append(f"elapsed: {self.elapsed_ns // 1_000_000_000}s")
        eta = self.eta_ns()
        if eta:
            lines.append(f"eta: {eta // 1_000_000_000}s")
        if self.fingerprint:
            lines.append(f"fingerprint: {self.fingerprint}")
        return lines


def summarize_progress(path: str | Path) -> ProgressSummary:
    """Fold a progress stream into a :class:`ProgressSummary`.

    Resume-aware: each ``run_started`` opens a new segment (a fresh
    writer origin), so elapsed time sums the per-segment spans rather
    than trusting raw ``t_ns`` across appends; spec/point tallies carry
    across segments, with cache-sourced events counting the recovered
    work."""
    summary = ProgressSummary()
    segment_last = 0
    for record in iter_progress(path):
        event = record.get("event")
        t_ns = int(record.get("t_ns", 0))
        if event == "run_started":
            summary.runs += 1
            summary.finished = False
            summary.elapsed_ns += segment_last
            segment_last = 0
            summary.total_specs = int(record.get("total_specs", summary.total_specs))
            if "total_points" in record:
                summary.total_points = int(record["total_points"])
            # A resumed run re-declares the whole spec list; done counts
            # restart with it (cache events re-cover finished work).
            summary.specs_done = summary.computed = summary.cached = 0
            summary.points_done = 0
            summary.fingerprint = None
            continue
        segment_last = max(segment_last, t_ns)
        if event == "spec_done":
            summary.specs_done += 1
            if record.get("source") == "cache":
                summary.cached += 1
            else:
                summary.computed += 1
            summary.points_done += int(record.get("points", 0))
        elif event == "run_finished":
            summary.finished = True
            summary.fingerprint = record.get("fingerprint", summary.fingerprint)
    summary.elapsed_ns += segment_last
    return summary


def render_progress(path: str | Path, stream: IO[str]) -> ProgressSummary:
    """Write the human summary of a progress stream to *stream*."""
    summary = summarize_progress(path)
    stream.write(f"progress: {path}\n")
    for line in summary.describe():
        stream.write(f"  {line}\n")
    return summary
