"""Generic scenario runner.

Ties together the scenario parser (tool #1), the simulator and the
metrics: "It builds and runs the tasks automatically."

Ad-hoc scenario files can also be run through the batch executor:
:func:`scenario_spec` wraps a scenario file's text in an
:class:`~repro.exec.spec.ExperimentSpec` (so runs are cacheable and
manifest-recorded) and :func:`build_scenario` is the registry builder
that materialises it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.treatments import TreatmentKind
from repro.exec.sim import run_simulation, simulate_spec, vm_key_for
from repro.exec.spec import ExperimentSpec
from repro.experiments.metrics import RunMetrics, compute_metrics
from repro.sim.simulation import SimResult
from repro.sim.vm import EXACT_VM, VMProfile
from repro.workloads.parser import Scenario

__all__ = ["RunOutcome", "run_scenario", "scenario_spec", "build_scenario"]


@dataclass(frozen=True)
class RunOutcome:
    """A simulation result with its metrics."""

    result: SimResult
    metrics: RunMetrics


def run_scenario(
    scenario: Scenario,
    *,
    vm: VMProfile = EXACT_VM,
    treatment: TreatmentKind | None = None,
) -> RunOutcome:
    """Simulate *scenario* and summarise it.

    *treatment* overrides the scenario's ``@treatment`` directive when
    given (handy for comparing policies on one file).
    """
    chosen = treatment if treatment is not None else scenario.treatment
    result = run_simulation(
        scenario.taskset,
        horizon=scenario.horizon_or_default(),
        faults=scenario.faults,
        treatment=chosen,
        vm=vm,
    )
    return RunOutcome(result=result, metrics=compute_metrics(result))


def scenario_spec(
    text: str,
    *,
    name: str = "scenario",
    treatment: str | None = None,
    vm: str | VMProfile = "exact",
) -> ExperimentSpec:
    """A cacheable spec for one scenario file's text.

    The full text is part of the spec (and therefore of its content
    hash), so editing the file invalidates any cached result.
    """
    return ExperimentSpec.make(
        name=name,
        builder="runner.scenario",
        scenario_text=text,
        treatment=treatment,
        vm=vm if isinstance(vm, str) else vm_key_for(vm),
    )


def build_scenario(spec: ExperimentSpec) -> RunOutcome:
    """Registry builder for ad-hoc scenario specs."""
    result = simulate_spec(spec)
    return RunOutcome(result=result, metrics=compute_metrics(result))
