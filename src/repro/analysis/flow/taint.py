"""Taint lattice and interprocedural propagation for the flow layer.

Three taint kinds cover the invariants the per-file linter cannot see
across a call that leaves the module:

* :data:`VOLATILE` — a value that differs between processes or hosts:
  wall-clock reads, environment variables, host identity, salted
  ``hash()``, global-RNG draws.  Reaching a fingerprint/cache-key sink
  makes "same spec, same hash" silently false (RT101).
* :data:`TIME_NS` — an integer-nanosecond quantity minted by
  :mod:`repro.units`.  Escaping into float arithmetic in a module where
  RT001's name heuristic cannot see it re-introduces the rounding drift
  the time discipline exists to prevent (RT102).
* :data:`RNG` — a seeded ``random.Random`` / numpy generator object.
  Deterministic *within* a process; captured by a callable that crosses
  a process boundary, the state is pickled and the parent/child streams
  silently fork (RT103).

A :class:`TaintVal` is *symbolic* within one function: besides concrete
kinds it may reference the function's own parameters (``params``) and
call sites (``calls`` — keyed by position, resolved once the whole
program is known).  :func:`propagate` then runs a context-insensitive
worklist fixpoint over the project model, computing per-function
return-taint (``ret``) and parameter-taint (``par``) maps — the finite
lattice (three kinds) guarantees termination.

Sanitizers are the two documented blessing points:
``repro.rng.derive_rng`` (volatile seed → sanctioned stream) and
``repro.exec.manifest.strip_volatile`` (manifest → fingerprintable
subset); their results carry no volatility.  ``stable_hash`` is *not* a
sanitizer — a stable hash of a volatile value is still volatile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.flow.model import CallSite, FunctionInfo, ProjectModel

__all__ = [
    "VOLATILE",
    "TIME_NS",
    "RNG",
    "TaintVal",
    "EMPTY",
    "TaintState",
    "propagate",
    "VOLATILE_CALLS",
    "RNG_CALLS",
    "TIME_CALLS",
    "SANITIZERS",
    "FACTORY_TYPES",
    "MUTATOR_METHODS",
]

VOLATILE = "volatile"
TIME_NS = "time_ns"
RNG = "rng"

_FS: frozenset = frozenset()


@dataclass(frozen=True)
class TaintVal:
    """Symbolic taint of one expression inside one function.

    ``kinds`` are concrete; ``params`` (parameter indices) and ``calls``
    (call-site keys ``(line, col)`` within the same function) are
    resolved against the whole-program fixpoint.  ``closure`` is the
    taint captured by a function object this value may denote (a lambda,
    a nested def, a ``functools.partial``) — one level deep.
    """

    kinds: frozenset = _FS
    params: frozenset = _FS
    calls: frozenset = _FS
    closure: "TaintVal | None" = None

    def __or__(self, other: "TaintVal") -> "TaintVal":
        if other is EMPTY:
            return self
        if self is EMPTY:
            return other
        closure = self.closure
        if other.closure is not None:
            closure = other.closure if closure is None else closure | other.closure
        return TaintVal(
            kinds=self.kinds | other.kinds,
            params=self.params | other.params,
            calls=self.calls | other.calls,
            closure=closure,
        )

    @property
    def is_empty(self) -> bool:
        return not (self.kinds or self.params or self.calls or self.closure)

    def drop_closure(self) -> "TaintVal":
        return self if self.closure is None else TaintVal(self.kinds, self.params, self.calls)


EMPTY = TaintVal()


def of(*kinds: str) -> TaintVal:
    return TaintVal(kinds=frozenset(kinds))


# ---------------------------------------------------------------------------
# Classification tables (resolved dotted names).
# ---------------------------------------------------------------------------

#: Module-level ``random`` functions drawing from the process-global RNG.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "expovariate", "gauss", "normalvariate",
    "getrandbits", "randbytes", "triangular", "betavariate", "paretovariate",
}

#: Calls whose result differs across processes/hosts/runs.
VOLATILE_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.getenv", "os.environ.get", "os.getpid", "os.getcwd", "os.uname",
        "os.urandom",
        "socket.gethostname", "socket.getfqdn",
        "platform.node", "platform.platform", "platform.uname",
        "uuid.uuid1", "uuid.uuid4",
        "getpass.getuser",
        "secrets.token_hex", "secrets.token_bytes", "secrets.token_urlsafe",
        "secrets.randbits", "secrets.randbelow",
        "hash", "id",
    }
    | {f"random.{name}" for name in _GLOBAL_RANDOM}
)

#: Names whose *subscript* (``environ["X"]``) is volatile.
VOLATILE_SUBSCRIPTS = frozenset({"os.environ", "os.environb"})

#: Constructors producing RNG objects (deterministic when seeded; the
#: object itself must still never cross a process boundary, RT103).
RNG_CALLS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "repro.rng.derive_rng",
        "repro.rng.resolve_rng",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)

#: :mod:`repro.units` constructors minting integer-nanosecond values.
TIME_CALLS = frozenset(
    {
        "repro.units.ns",
        "repro.units.us",
        "repro.units.ms",
        "repro.units.seconds",
        "repro.units.parse_duration",
    }
)

#: Blessing points: results carry no volatility.
SANITIZERS = frozenset(
    {
        "repro.rng.derive_rng",
        "repro.exec.manifest.strip_volatile",
    }
)

#: Factories whose return value we type for method resolution.
FACTORY_TYPES = {
    "repro.exec.executor.make_executor": "repro.exec.executor.PoolExecutor",
}

#: Method names that mutate their receiver in place (RT104 evidence).
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "update", "setdefault", "popitem", "add", "discard",
        "appendleft", "popleft",
    }
)


def call_result_taint(resolved: tuple[str, ...]) -> TaintVal | None:
    """Concrete result taint for a call classified by its resolved
    dotted name(s), or ``None`` when the call is unclassified (internal
    or unknown — resolved by the global fixpoint instead)."""
    for name in resolved:
        if name in SANITIZERS:
            # derive_rng both sanitizes its seed and returns an RNG.
            return of(RNG) if name in RNG_CALLS else EMPTY
        if name in VOLATILE_CALLS:
            return of(VOLATILE)
        if name in RNG_CALLS:
            return of(RNG)
        if name in TIME_CALLS:
            return of(TIME_NS)
    return None


# ---------------------------------------------------------------------------
# Whole-program fixpoint.
# ---------------------------------------------------------------------------

@dataclass
class TaintState:
    """Fixpoint result: per-function return/parameter taint kinds."""

    ret: dict[str, frozenset] = field(default_factory=dict)
    par: dict[str, list[set]] = field(default_factory=dict)
    rounds: int = 0

    # -- evaluation helpers (used by the rules) ---------------------------

    def kinds_of(
        self,
        model: "ProjectModel",
        func: "FunctionInfo",
        tv: TaintVal,
        _seen: set | None = None,
    ) -> frozenset:
        """Concrete taint kinds *tv* may carry in *func*'s context."""
        if _seen is None:
            _seen = set()
        kinds = set(tv.kinds)
        for i in tv.params:
            pars = self.par.get(func.fqn)
            if pars is not None and i < len(pars):
                kinds |= pars[i]
        for key in tv.calls:
            kinds |= self._call_kinds(model, func, key, _seen)
        return frozenset(kinds)

    def nonlocal_kinds(
        self, model: "ProjectModel", func: "FunctionInfo", tv: TaintVal
    ) -> frozenset:
        """Kinds arriving only through parameters or through calls into
        *other* modules — the flows per-file rules cannot see."""
        kinds: set = set()
        for i in tv.params:
            pars = self.par.get(func.fqn)
            if pars is not None and i < len(pars):
                kinds |= pars[i]
        for key in tv.calls:
            site = func.call_at(key)
            if site is None:
                continue
            for cand in site.callee:
                target = model.functions.get(cand)
                if target is not None and target.module != func.module:
                    kinds |= self.ret.get(cand, _FS)
        return frozenset(kinds)

    def closure_kinds(
        self, model: "ProjectModel", func: "FunctionInfo", tv: TaintVal
    ) -> frozenset:
        """Kinds captured by any callable *tv* may denote — the value's
        own closure, or the closure returned by an internal callee
        (``make_worker(rng)``-style factories, one level deep)."""
        kinds: set = set()
        if tv.closure is not None:
            kinds |= self.kinds_of(model, func, tv.closure)
        for key in tv.calls:
            site = func.call_at(key)
            if site is None:
                continue
            for cand in site.callee:
                target = model.functions.get(cand)
                if target is None or target.ret_closure is None:
                    continue
                cl = target.ret_closure
                kinds |= cl.kinds
                for i in cl.params:
                    arg = _arg_for_param(site, target, i)
                    if arg is not None:
                        kinds |= self.kinds_of(model, func, arg)
        return frozenset(kinds)

    def _call_kinds(
        self, model: "ProjectModel", func: "FunctionInfo", key, _seen: set
    ) -> frozenset:
        # A call-site arg can symbolically reference its own site
        # (``x = min(x, f())``); the guard turns that cycle into EMPTY
        # — sound for a join, the other operands still contribute.
        guard = (func.fqn, key)
        if guard in _seen:
            return _FS
        _seen.add(guard)
        try:
            site = func.call_at(key)
            if site is None:
                return _FS
            internal = [c for c in site.callee if c in model.functions]
            if internal:
                kinds: set = set()
                for cand in internal:
                    kinds |= self.ret.get(cand, _FS)
                return frozenset(kinds)
            # Unknown external call: assume it passes its inputs through
            # (json.dumps(volatile) is volatile, min(t, x) stays time-valued).
            kinds = set()
            for arg in site.all_args():
                kinds |= self.kinds_of(model, func, arg, _seen)
            return frozenset(kinds)
        finally:
            _seen.discard(guard)


def _arg_for_param(site: "CallSite", target: "FunctionInfo", index: int) -> TaintVal | None:
    """The call-site argument feeding *target*'s parameter *index*."""
    pos = index - 1 if site.bound and target.is_method else index
    if 0 <= pos < len(site.args):
        return site.args[pos]
    if 0 <= index < len(target.params):
        name = target.params[index]
        for kw, tv in site.kwargs:
            if kw == name:
                return tv
    return None


def propagate(model: "ProjectModel", *, max_rounds: int = 50) -> TaintState:
    """Context-insensitive interprocedural fixpoint over *model*."""
    state = TaintState()
    funcs = model.functions
    for fqn, info in funcs.items():
        state.ret[fqn] = frozenset()
        state.par[fqn] = [set() for _ in info.params]

    for round_no in range(1, max_rounds + 1):
        changed = False
        for fqn, info in funcs.items():
            # Push argument taint into callee parameter slots.
            for site in info.calls:
                for cand in site.callee:
                    target = funcs.get(cand)
                    if target is None:
                        continue
                    pars = state.par[cand]
                    for j, arg in enumerate(site.args):
                        i = j + 1 if site.bound and target.is_method else j
                        if i < len(pars):
                            add = state.kinds_of(model, info, arg) - pars[i]
                            if add:
                                pars[i] |= add
                                changed = True
                    for kw, arg in site.kwargs:
                        if kw in target.params:
                            i = target.params.index(kw)
                            add = state.kinds_of(model, info, arg) - pars[i]
                            if add:
                                pars[i] |= add
                                changed = True
            # Recompute return taint.
            new_ret = state.kinds_of(model, info, info.ret)
            if new_ret != state.ret[fqn]:
                state.ret[fqn] = new_ret
                changed = True
        state.rounds = round_no
        if not changed:
            break
    return state
