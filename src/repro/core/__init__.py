"""The paper's primary contribution: admission control, fault
detection, and allowance-based fault tolerance for fixed-priority
preemptive periodic task systems."""

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionResult,
    DetectorChange,
)
from repro.core.allowance import (
    EquitableAllowance,
    ResidualAllowanceManager,
    adjusted_wcrt,
    additive_adjusted_wcrt,
    compute_equitable,
    equitable_allowance,
    system_adjusted_wcrt,
    system_allowance,
    task_allowance,
)
from repro.core.blocking import (
    CriticalSection,
    blocking_times_pcp,
    blocking_times_pip,
    equitable_allowance_with_blocking,
    is_feasible_with_blocking,
    priority_ceilings,
    response_time_with_blocking,
)
from repro.core.bounds import (
    hyperbolic_test,
    liu_layland_bound,
    liu_layland_test,
)
from repro.core.context import AnalysisContext, AnalysisView
from repro.core.detection import (
    EXACT,
    JRATE_10MS,
    DetectorSpec,
    Rounding,
    RoundingMode,
    plan_detectors,
)
from repro.core.faults import (
    CostOverrun,
    CostUnderrun,
    FaultInjector,
    NoFaults,
    RandomFaults,
)
from repro.core.feasibility import (
    FeasibilityReport,
    LoadTest,
    TaskReport,
    WeaklyHardReport,
    WeaklyHardTaskReport,
    analyze,
    assert_feasible,
    is_feasible,
    is_weakly_hard_feasible,
    job_response_times,
    level_busy_period,
    load_test,
    response_time_constrained,
    response_time_of_job,
    wc_response_time,
    weakly_hard_analyze,
    weakly_hard_response_time,
)
from repro.core.jitter import (
    analyze_with_jitter,
    detector_offsets_with_jitter,
    is_feasible_with_jitter,
    max_tolerable_jitter,
    response_time_with_jitter,
)
from repro.core.partition import (
    Heuristic,
    PartitionError,
    Partitioner,
    PartitionResult,
    partition_tasks,
)
from repro.core.priority_assignment import (
    audsley_opa,
    deadline_monotonic,
    rate_monotonic,
)
from repro.core.precedence import (
    PrecedenceGraph,
    end_to_end_bound,
    holistic_response_times,
)
from repro.core.sensitivity import (
    SlackComparison,
    breakdown_utilization,
    compare_slack,
    scaling_factor_ppm,
)
from repro.core.servers import (
    ServerSpec,
    deferrable_feasible,
    deferrable_response_times,
    polling_response_bound,
    polling_server_taskset,
    server_sizing,
)
from repro.core.sporadic import (
    SporadicTask,
    analysis_taskset,
    dense_arrivals,
    periodic_equivalent,
    poisson_arrivals,
)
from repro.core.task import Task, TaskSet, hyperperiod
from repro.core.weakly_hard import (
    MKConstraint,
    SlidingWindowChecker,
    first_violation,
    satisfies,
)
from repro.core.underrun import (
    ReclaimReport,
    observed_costs,
    reclaim_allowance,
    tighten_costs,
)
from repro.core.timedemand import (
    demand_curve,
    scheduling_points,
    tda_feasible,
    tda_schedulable,
    time_demand,
)
from repro.core.treatments import (
    StopDirective,
    TreatmentKind,
    TreatmentPlan,
    TreatmentRuntime,
    default_degraded_costs,
    plan_treatment,
)

__all__ = [
    # task model
    "Task",
    "TaskSet",
    "hyperperiod",
    # weakly-hard (m, K) semantics
    "MKConstraint",
    "SlidingWindowChecker",
    "satisfies",
    "first_violation",
    "WeaklyHardTaskReport",
    "WeaklyHardReport",
    "weakly_hard_response_time",
    "weakly_hard_analyze",
    "is_weakly_hard_feasible",
    # partitioned multiprocessor
    "Heuristic",
    "PartitionError",
    "PartitionResult",
    "Partitioner",
    "partition_tasks",
    # feasibility
    "LoadTest",
    "load_test",
    "wc_response_time",
    "response_time_of_job",
    "job_response_times",
    "response_time_constrained",
    "level_busy_period",
    "TaskReport",
    "FeasibilityReport",
    "analyze",
    "is_feasible",
    "assert_feasible",
    # analysis fast path (DESIGN.md §3.5)
    "AnalysisContext",
    "AnalysisView",
    # bounds
    "liu_layland_bound",
    "liu_layland_test",
    "hyperbolic_test",
    # priority assignment
    "rate_monotonic",
    "deadline_monotonic",
    "audsley_opa",
    # allowance
    "equitable_allowance",
    "adjusted_wcrt",
    "additive_adjusted_wcrt",
    "task_allowance",
    "system_allowance",
    "system_adjusted_wcrt",
    "EquitableAllowance",
    "compute_equitable",
    "ResidualAllowanceManager",
    # detection
    "Rounding",
    "RoundingMode",
    "EXACT",
    "JRATE_10MS",
    "DetectorSpec",
    "plan_detectors",
    # faults
    "NoFaults",
    "CostOverrun",
    "CostUnderrun",
    "FaultInjector",
    "RandomFaults",
    # treatments
    "TreatmentKind",
    "StopDirective",
    "TreatmentPlan",
    "TreatmentRuntime",
    "plan_treatment",
    "default_degraded_costs",
    # future work (paper §7)
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionResult",
    "DetectorChange",
    "CriticalSection",
    "priority_ceilings",
    "blocking_times_pcp",
    "blocking_times_pip",
    "response_time_with_blocking",
    "is_feasible_with_blocking",
    "equitable_allowance_with_blocking",
    "SporadicTask",
    "periodic_equivalent",
    "analysis_taskset",
    "dense_arrivals",
    "poisson_arrivals",
    "observed_costs",
    "tighten_costs",
    "reclaim_allowance",
    "ReclaimReport",
    # extended analyses
    "response_time_with_jitter",
    "analyze_with_jitter",
    "is_feasible_with_jitter",
    "detector_offsets_with_jitter",
    "max_tolerable_jitter",
    "scheduling_points",
    "time_demand",
    "tda_schedulable",
    "tda_feasible",
    "demand_curve",
    "scaling_factor_ppm",
    "breakdown_utilization",
    "compare_slack",
    "SlackComparison",
    "PrecedenceGraph",
    "holistic_response_times",
    "end_to_end_bound",
    "ServerSpec",
    "polling_server_taskset",
    "deferrable_response_times",
    "deferrable_feasible",
    "polling_response_bound",
    "server_sizing",
]
