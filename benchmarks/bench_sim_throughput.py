"""Substrate benchmark: simulator throughput.

Not a paper exhibit — this measures the discrete-event engine that
replaces the paper's jRate testbed, so the cost of the figure
regenerations can be attributed (events/second, jobs/second).
"""

from types import SimpleNamespace

from repro.core.treatments import TreatmentKind
from repro.sim.engine import Engine, Rank
from repro.sim.simulation import simulate
from repro.units import ms
from repro.workloads.generator import GeneratorConfig, random_taskset
from repro.workloads.scenarios import paper_figures_taskset, paper_fault


def test_paper_system_one_hyperperiod(benchmark):
    ts = paper_figures_taskset()

    def run():
        return simulate(ts, horizon=ms(15_000))  # 10 hyperperiods of tau1

    result = benchmark(run)
    assert len(result.jobs) > 80


def test_paper_system_with_detectors(benchmark):
    ts = paper_figures_taskset()

    def run():
        return simulate(
            ts,
            horizon=ms(15_000),
            faults=paper_fault(),
            treatment=TreatmentKind.DETECT_ONLY,
        )

    result = benchmark(run)
    assert result.trace.of_kind

def test_long_horizon_lazy_release_chain(benchmark):
    """A long horizon over short periods.  Eager release scheduling
    pushed ~horizon/period heap entries per task before t=0; the lazy
    release chain keeps the pending-event count O(n tasks), so this
    case measures (and guards) that optimisation."""
    ts = random_taskset(
        GeneratorConfig(
            n=4,
            utilization=0.6,
            period_lo=1_000,
            period_hi=10_000,
            period_granularity=100,
            seed=11,
        )
    )

    def run():
        return simulate(ts, horizon=50_000_000)

    result = benchmark(run)
    assert len(result.jobs) > 10_000


def test_raw_engine_dispatch(benchmark):
    """Pure event-loop overhead, no processor model: a self-rescheduling
    tick chain plus a cancelled event per tick (the cancel/lazy-removal
    path the processor exercises constantly).  Measures the tuple-heap
    fused run loop in isolation; events/sec recorded via the trace
    shim so the CI regression guard watches it."""
    n_events = 200_000

    def run():
        eng = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < n_events:
                eng.schedule_in(100, tick, Rank.RELEASE)
                eng.schedule_in(50, _noop, Rank.DEADLINE_CHECK).cancel()

        eng.schedule(0, tick)
        eng.run()
        return SimpleNamespace(trace=range(eng.events_processed))

    result = benchmark(run)
    assert len(result.trace) == n_events


def _noop():
    return None


def test_dense_ten_task_system(benchmark):
    ts = random_taskset(
        GeneratorConfig(
            n=10,
            utilization=0.9,
            period_lo=1_000,
            period_hi=100_000,
            period_granularity=100,
            seed=7,
        )
    )

    def run():
        return simulate(ts, horizon=5_000_000)

    result = benchmark(run)
    jobs = len(result.jobs)
    assert jobs > 100
