"""Population-sweep throughput: the vectorized stepper at scale.

The tentpole claim of the sweep layer is that a 10k-system Monte-Carlo
sweep of the no-fault preemptive case runs in seconds, not minutes —
an aggregate ``systems_per_s`` at least an order of magnitude above
the serial per-system ``simulate()`` loop it replaces, with
bit-identical per-system schedules.  Both halves are asserted here and
the sweep rate lands in ``BENCH_results.json`` as ``systems_per_s``,
so the CI regression guard (``check_regression.py``) watches it.
"""

import time
from types import SimpleNamespace

from repro.core.feasibility import is_feasible
from repro.exec.executor import LocalExecutor
from repro.exec.sim import run_simulation
from repro.exec.sweep import SweepSpec, run_sweep
from repro.rng import stable_hash
from repro.sim.batch import sim_job_records
from repro.workloads.population import PopulationConfig, generate_population

#: Systems in the headline sweep.
TOTAL_SYSTEMS = 10_000

#: Systems the serial reference loop runs (a subset — the whole point
#: is that 10k serial engine runs would take minutes).
SERIAL_SYSTEMS = 200


def _bench_sweep() -> SweepSpec:
    return SweepSpec.make(
        name="bench-population",
        axes={"utilization": (0.5, 0.6, 0.7, 0.8, 0.9)},
        replicates=TOTAL_SYSTEMS // 5,
        base_seed=77,
        n=4,
        deadline_factor=0.9,
        horizon_periods=6,
        chunk_size=2_000,
    )


def test_population_sweep_10k(benchmark):
    sweep = _bench_sweep()

    def run():
        result = run_sweep(sweep, executor=LocalExecutor())
        return SimpleNamespace(systems=len(result.points), points=result.points)

    value = benchmark(run)
    assert value.systems == TOTAL_SYSTEMS
    assert all(p.eligible for p in value.points)  # whole sweep took the fast path


def test_batched_rate_10x_serial_loop():
    """Aggregate systems/s of the batched sweep vs the serial per-system
    loop it replaces, on identical systems (fingerprint-checked).

    The serial loop performs the same per-point work a sweep point
    needs — generate the system, run the engine, check analytic
    feasibility, summarise and fingerprint the schedule — one system
    at a time."""
    sweep = _bench_sweep()
    config = PopulationConfig(n=4, utilization=0.5, deadline_factor=0.9)

    t0 = time.perf_counter()  # noqa: RT002 - host-side benchmark timing, not simulated time
    serial_fps = []
    for k in range(SERIAL_SYSTEMS):
        (ts,) = generate_population(1, config, seed=77, key=("cell", 0.5), start=k)
        horizon = sweep.horizon_periods * max(t.period for t in ts)
        result = run_simulation(ts, horizon=horizon)
        is_feasible(ts)
        recs = sim_job_records(result)
        sum(1 for r in recs if r[3] >= 0)  # completed
        sum(1 for r in recs if r[4])  # misses
        serial_fps.append(f"{stable_hash(recs):08x}")
    serial_rate = SERIAL_SYSTEMS / (time.perf_counter() - t0)  # noqa: RT002 - host-side benchmark timing, not simulated time

    t0 = time.perf_counter()  # noqa: RT002 - host-side benchmark timing, not simulated time
    result = run_sweep(sweep, executor=LocalExecutor())
    batched_rate = len(result.points) / (time.perf_counter() - t0)  # noqa: RT002 - host-side benchmark timing, not simulated time

    # The first SERIAL_SYSTEMS points are exactly the serial systems
    # (cell-major ordinal order, utilization=0.5 is the first cell).
    batched_fps = [p.fingerprint for p in result.points[:SERIAL_SYSTEMS]]
    assert batched_fps == serial_fps
    assert batched_rate >= 10 * serial_rate, (
        f"batched sweep ran {batched_rate:,.0f} systems/s, serial loop "
        f"{serial_rate:,.0f}; need >= 10x"
    )
