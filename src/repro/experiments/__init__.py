"""Experiment harness: regenerate every table and figure of the paper
and run ad-hoc scenario files (declaratively, through the batch
executor in :mod:`repro.exec`)."""

from repro.experiments.metrics import RunMetrics, TaskMetrics, compute_metrics
from repro.experiments.paper import (
    Claim,
    Figure1Result,
    FigureResult,
    Table1Result,
    Table2Result,
    Table3Result,
    all_experiments,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
    table3,
)
from repro.experiments.ablations import (
    allowance_sweep,
    blocking_sweep,
    detector_overhead_sweep,
    feasible_pool,
    rounding_sweep,
    server_sweep,
    treatment_sweep,
)
from repro.experiments.registry import (
    BUILDERS,
    ablation_specs,
    all_specs,
    build_exhibit,
    paper_specs,
    spec_for,
)
from repro.experiments.report import generate_entries, generate_report
from repro.experiments.runner import RunOutcome, build_scenario, run_scenario, scenario_spec

__all__ = [
    "compute_metrics",
    "RunMetrics",
    "TaskMetrics",
    "run_scenario",
    "RunOutcome",
    "scenario_spec",
    "build_scenario",
    "Claim",
    "all_experiments",
    "table1",
    "figure1",
    "table2",
    "table3",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "Table1Result",
    "Figure1Result",
    "Table2Result",
    "Table3Result",
    "FigureResult",
    "feasible_pool",
    "treatment_sweep",
    "rounding_sweep",
    "allowance_sweep",
    "detector_overhead_sweep",
    "blocking_sweep",
    "server_sweep",
    "BUILDERS",
    "build_exhibit",
    "paper_specs",
    "ablation_specs",
    "all_specs",
    "spec_for",
    "generate_entries",
    "generate_report",
]
