"""Unit tests for detector placement and timer rounding (paper §3, §6.2)."""

import pytest

from repro.core.detection import (
    EXACT,
    JRATE_10MS,
    DetectorSpec,
    Rounding,
    RoundingMode,
    plan_detectors,
)
from repro.core.feasibility import analyze
from repro.units import ms


class TestRounding:
    def test_none_is_identity(self):
        assert EXACT.apply(ms(29)) == ms(29)
        assert EXACT.apply(12345) == 12345

    @pytest.mark.parametrize("value,expected", [(29, 30), (58, 60), (87, 90)])
    def test_jrate_rounds_up_paper_values(self, value, expected):
        # §6.2: "the detector of task tau1 has a 30-29=1 ms delay, that
        # of tau2 60-58=2 ms and that of tau3 90-87=3 ms".
        assert JRATE_10MS.apply(ms(value)) == ms(expected)

    def test_up_on_exact_multiple_is_identity(self):
        assert JRATE_10MS.apply(ms(30)) == ms(30)

    def test_down(self):
        r = Rounding(RoundingMode.DOWN, 10)
        assert r.apply(29) == 20
        assert r.apply(30) == 30

    def test_nearest(self):
        r = Rounding(RoundingMode.NEAREST, 10)
        assert r.apply(24) == 20
        assert r.apply(25) == 30  # ties round up
        assert r.apply(26) == 30

    def test_zero(self):
        assert JRATE_10MS.apply(0) == 0

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            Rounding(RoundingMode.UP, 0)


class TestDetectorSpec:
    def test_delay(self):
        spec = DetectorSpec("t", period=ms(200), offset=ms(30), nominal_offset=ms(29))
        assert spec.delay == ms(1)

    def test_fire_time(self):
        spec = DetectorSpec("t", period=ms(200), offset=ms(30), nominal_offset=ms(29))
        assert spec.fire_time(ms(1000)) == ms(1030)


class TestPlanDetectors:
    def test_one_detector_per_task(self, table2):
        report = analyze(table2)
        thresholds = {n: r.wcrt for n, r in report.per_task.items()}
        specs = plan_detectors(table2, thresholds)
        assert set(specs) == {"tau1", "tau2", "tau3"}
        # Period = task period, offset = WCRT (paper §3).
        assert specs["tau1"].period == ms(200)
        assert specs["tau1"].offset == ms(29)
        assert specs["tau3"].offset == ms(87)

    def test_jrate_rounding_applied(self, table2):
        report = analyze(table2)
        thresholds = {n: r.wcrt for n, r in report.per_task.items()}
        specs = plan_detectors(table2, thresholds, JRATE_10MS)
        assert [specs[n].delay for n in ("tau1", "tau2", "tau3")] == [
            ms(1),
            ms(2),
            ms(3),
        ]

    def test_negative_threshold_rejected(self, table2):
        with pytest.raises(ValueError):
            plan_detectors(table2, {"tau1": -1, "tau2": 1, "tau3": 1})

    def test_missing_threshold_raises(self, table2):
        with pytest.raises(KeyError):
            plan_detectors(table2, {"tau1": 1})
