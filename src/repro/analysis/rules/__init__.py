"""Built-in lint rules.

Importing this package registers every rule with
:mod:`repro.analysis.lint`.  Codes:

========  =======================================================
``RT001``  raw float arithmetic on time-valued expressions
``RT002``  wall-clock reads (``time.time``, ``datetime.now`` …)
``RT003``  nondeterministic randomness (global RNG, unseeded
           ``Random``, ``hash``-derived seeds)
``RT004``  mutation of frozen dataclasses outside ``__post_init__``
``RT005``  engine events scheduled with raw integer ranks
``RT006``  direct ``simulate()``/``run_scenario()`` calls inside the
           experiments layer (must go through ``repro.exec.sim``)
``RT007``  bare ``print()`` in library code (CLI/report modules are
           exempt; everything else goes through ``repro.obs``)
``RT008``  cold analysis calls (``analyze``, ``wc_response_time``,
           ``is_feasible``) inside ``max_such_that`` predicates in
           ``repro.core`` (must probe via ``AnalysisContext``)
``RT009``  cross-processor task mutation outside the
           ``repro.core.partition`` APIs (partitioner privates,
           snapshot ``assignment`` writes, shard ``detach_task`` /
           ``adopt_task`` outside the ``repro.sim.mp`` driver)
``RT010``  per-system ``simulate()`` loops in population code
           (``repro.sim.batch``, ``repro.exec.sweep``,
           ``repro.workloads.population``,
           ``repro.experiments.population``) outside the ``_exact*``
           classifier fallback
``RT011``  unbounded ``MemorySink`` construction in the same
           population modules (bounded ``RingSink`` or streaming
           sinks only)
``RT099``  stale ``# noqa`` suppressions — codes that silenced no
           finding on a full run (warning)
========  =======================================================

Whole-program (cross-module) rules carry ``RT1xx`` codes and live in
:mod:`repro.analysis.flow.rules`; they run via ``--flow``, not here.

To add a rule: subclass :class:`repro.analysis.lint.Rule`, decorate it
with :func:`repro.analysis.lint.register`, give it the next free code,
and import its module below so registration runs.
"""

from repro.analysis.rules import (  # noqa: F401 - imported for registration
    determinism,
    engine_ranks,
    executor_discipline,
    immutability,
    partition_discipline,
    population_discipline,
    reporting,
    search_discipline,
    sink_discipline,
    suppressions,
    time_discipline,
)
