"""The semantic task-system validator (TS0xx diagnostics)."""

import textwrap

from repro.analysis import Severity, validate_scenario_text, validate_taskset
from repro.core.task import Task, TaskSet
from repro.units import ms


def scenario(text):
    return validate_scenario_text(textwrap.dedent(text), source="scn")


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestTasksetChecks:
    def test_clean_paper_system(self):
        ts = TaskSet(
            [
                Task("tau1", cost=ms(29), period=ms(200), deadline=ms(70), priority=20),
                Task("tau2", cost=ms(29), period=ms(250), deadline=ms(120), priority=18),
                Task("tau3", cost=ms(29), period=ms(1500), deadline=ms(120), priority=16),
            ]
        )
        assert validate_taskset(ts) == []

    def test_duplicate_priorities_warn(self):
        ts = TaskSet(
            [
                Task("a", cost=1, period=100, priority=5),
                Task("b", cost=1, period=100, priority=5),
            ]
        )
        diags = validate_taskset(ts)
        assert codes(diags) == ["TS001"]
        assert diags[0].severity is Severity.WARNING

    def test_overutilization_is_an_error(self):
        ts = TaskSet(
            [
                Task("a", cost=60, period=100, priority=2),
                Task("b", cost=50, period=100, priority=1),
            ]
        )
        diags = validate_taskset(ts)
        assert "TS003" in codes(diags)
        assert any(d.severity is Severity.ERROR for d in diags)

    def test_exact_full_utilization_is_not_flagged_as_over(self):
        ts = TaskSet([Task("a", cost=100, period=100, priority=1)])
        assert "TS003" not in codes(validate_taskset(ts))

    def test_arbitrary_deadline_warns(self):
        ts = TaskSet([Task("a", cost=10, period=100, deadline=150, priority=1)])
        assert "TS004" in codes(validate_taskset(ts))

    def test_cost_above_deadline_is_an_error(self):
        # Legal for Task (cost <= period) but the job can never make it.
        ts = TaskSet([Task("a", cost=80, period=100, deadline=50, priority=1)])
        diags = validate_taskset(ts)
        assert "TS005" in codes(diags)

    def test_liu_layland_gap_warns(self):
        # U ~ 0.95 for 3 tasks: above the ~0.78 LL bound, below 1.
        ts = TaskSet(
            [
                Task("a", cost=35, period=100, priority=3),
                Task("b", cost=30, period=100, priority=2),
                Task("c", cost=30, period=100, priority=1),
            ]
        )
        assert "TS007" in codes(validate_taskset(ts))


class TestScenarioChecks:
    def test_clean_scenario(self):
        assert (
            scenario(
                """
                @unit ms
                @horizon 1600
                task tau1 priority=20 cost=29 period=200 deadline=70
                task tau2 priority=18 cost=29 period=250 deadline=120
                fault tau1 job=5 extra=40
                """
            )
            == []
        )

    def test_zero_cost_located_on_its_line(self):
        diags = scenario(
            """
            @unit ms
            task good priority=2 cost=1 period=10
            task bad priority=1 cost=0 period=10
            """
        )
        assert codes(diags) == ["TS002"]
        assert diags[0].line == 4
        assert "bad" in diags[0].message

    def test_negative_period_is_an_error(self):
        diags = scenario("task t priority=1 cost=1 period=-5\n")
        assert "TS002" in codes(diags)

    def test_duplicate_priority_points_at_second_declaration(self):
        diags = scenario(
            """
            task a priority=7 cost=1 period=10
            task b priority=7 cost=1 period=10
            """
        )
        assert codes(diags) == ["TS001"]
        assert diags[0].line == 3
        assert "line 2" in diags[0].message

    def test_unparsable_scenario_reports_ts006(self):
        diags = scenario("bogus directive here\ntask t priority=1 cost=1 period=10\n")
        assert "TS006" in codes(diags)

    def test_fault_beyond_horizon_warns(self):
        diags = scenario(
            """
            @unit ms
            @horizon 100
            task t priority=1 cost=1 period=50
            fault t job=9 extra=1
            """
        )
        assert "TS008" in codes(diags)

    def test_fractional_durations_are_exact(self):
        # 0.1 ms = exactly 100_000 ns; must not trip TS002/TS006.
        assert (
            scenario(
                """
                @unit ms
                task t priority=1 cost=0.1 period=10
                """
            )
            == []
        )

    def test_malformed_duration_is_located(self):
        diags = scenario(
            """
            @unit ms
            task t priority=1 cost=banana period=10
            """
        )
        assert codes(diags) == ["TS002"]
        assert diags[0].line == 3
