"""Unit tests for the scenario file parser (measurement tool #1)."""

import pytest

from repro.core.treatments import TreatmentKind
from repro.units import MS, US, ms
from repro.workloads.parser import (
    Scenario,
    ScenarioError,
    format_scenario,
    load_scenario,
    parse_scenario,
)

PAPER_FILE = """
# The paper's tested system (Table 2), figures phasing.
@unit ms
@horizon 1600
@treatment system-allowance
task tau1 priority=20 cost=29 period=200  deadline=70
task tau2 priority=18 cost=29 period=250  deadline=120
task tau3 priority=16 cost=29 period=1500 deadline=120 offset=1000
fault tau1 job=5 extra=40
"""


class TestParsing:
    def test_paper_file(self):
        sc = parse_scenario(PAPER_FILE)
        assert len(sc.taskset) == 3
        assert sc.taskset["tau1"].cost == ms(29)
        assert sc.taskset["tau3"].offset == ms(1000)
        assert sc.horizon == ms(1600)
        assert sc.treatment is TreatmentKind.SYSTEM_ALLOWANCE
        assert sc.faults.demand("tau1", 5, ms(29)) == ms(69)
        assert sc.faults.demand("tau1", 4, ms(29)) == ms(29)

    def test_positional_fields(self):
        sc = parse_scenario("task a 10 5 100 80 3")
        t = sc.taskset["a"]
        assert (t.priority, t.cost, t.period, t.deadline, t.offset) == (
            10,
            ms(5),
            ms(100),
            ms(80),
            ms(3),
        )

    def test_deadline_defaults_to_period(self):
        sc = parse_scenario("task a priority=1 cost=5 period=100")
        assert sc.taskset["a"].deadline == ms(100)

    def test_unit_directive(self):
        sc = parse_scenario("@unit us\ntask a priority=1 cost=5 period=100")
        assert sc.taskset["a"].cost == 5 * US

    def test_fractional_durations(self):
        sc = parse_scenario("task a priority=1 cost=0.5 period=10")
        assert sc.taskset["a"].cost == MS // 2

    def test_underrun_fault(self):
        sc = parse_scenario(
            "task a priority=1 cost=5 period=100\nfault a job=0 saved=2"
        )
        assert sc.faults.demand("a", 0, ms(5)) == ms(3)

    def test_comments_and_blank_lines(self):
        sc = parse_scenario("\n# hello\ntask a priority=1 cost=1 period=2 # inline\n\n")
        assert len(sc.taskset) == 1

    def test_mixed_positional_and_keyword(self):
        sc = parse_scenario("task a 10 cost=5 period=100")
        assert sc.taskset["a"].priority == 10
        assert sc.taskset["a"].cost == ms(5)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",  # no tasks
            "task a priority=1 cost=5",  # missing period
            "task a priority=1 cost=5 period=100 bogus=3",
            "task a priority=1 cost=5 period=100 cost=6",
            "@unit parsecs\ntask a priority=1 cost=5 period=100",
            "@treatment nonsense\ntask a priority=1 cost=5 period=100",
            "task a priority=1 cost=5 period=100\nfault b job=0 extra=1",
            "task a priority=1 cost=5 period=100\nfault a extra=1",
            "task a priority=1 cost=5 period=100\nfault a job=0",
            "frob a b c",
            "task a 1 2 3 4 5 6 7",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ScenarioError):
            parse_scenario(text)

    def test_error_carries_location(self):
        with pytest.raises(ScenarioError, match="myfile:2"):
            parse_scenario("task a priority=1 cost=5 period=10\ntask b oops", source="myfile")


class TestRoundTrip:
    def test_format_then_parse(self):
        original = parse_scenario(PAPER_FILE)
        text = format_scenario(original)
        reparsed = parse_scenario(text)
        assert reparsed.taskset == original.taskset
        assert reparsed.horizon == original.horizon
        assert reparsed.treatment == original.treatment
        assert reparsed.faults.deviations == original.faults.deviations

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scenario.txt"
        path.write_text(PAPER_FILE)
        sc = load_scenario(path)
        assert len(sc.taskset) == 3

    def test_horizon_default_is_hyperperiod(self):
        sc = parse_scenario("task a priority=1 cost=1 period=4\ntask b priority=2 cost=1 period=6")
        assert sc.horizon_or_default() == ms(12)

    def test_horizon_default_includes_offset(self):
        sc = parse_scenario("task a priority=1 cost=1 period=4 offset=100")
        assert sc.horizon_or_default() == ms(104)
