"""Unit and property tests for runtime resource protocols (PIP/ICPP)."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.core.blocking import (
    blocking_times_pcp,
    blocking_times_pip,
    response_time_with_blocking,
)
from repro.core.task import Task, TaskSet
from repro.sim.locking import LockProtocol, SectionSpec
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind


def two_task_setup():
    """lo locks r for its first 12 units; hi needs r at progress 2."""
    ts = TaskSet(
        [
            Task("hi", cost=10, period=100, priority=10, offset=5),
            Task("lo", cost=20, period=200, priority=1),
        ]
    )
    sections = [SectionSpec("lo", "r", 0, 12), SectionSpec("hi", "r", 2, 3)]
    return ts, sections


class TestSectionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SectionSpec("t", "r", -1, 5)
        with pytest.raises(ValueError):
            SectionSpec("t", "r", 0, 0)

    def test_section_beyond_cost_rejected(self):
        ts = TaskSet([Task("t", cost=5, period=10, priority=1)])
        with pytest.raises(ValueError, match="exceeds"):
            simulate(ts, horizon=10, sections=[SectionSpec("t", "r", 2, 4)])

    def test_unknown_task_rejected(self):
        ts = TaskSet([Task("t", cost=5, period=10, priority=1)])
        with pytest.raises(ValueError, match="unknown"):
            simulate(ts, horizon=10, sections=[SectionSpec("x", "r", 0, 1)])


class TestPip:
    def test_direct_blocking_and_inheritance(self):
        ts, sections = two_task_setup()
        res = simulate(ts, horizon=100, sections=sections, protocol=LockProtocol.PIP)
        hi, lo = res.job("hi", 0), res.job("lo", 0)
        # hi preempts at 5, blocks at 7 (needs r at progress 2); lo
        # inherits priority 10, finishes its section at 14; hi resumes
        # and completes at 22.
        assert hi.started_at == 5
        assert res.trace.of_kind(EventKind.BLOCKED)[0].time == 7
        assert res.trace.of_kind(EventKind.UNBLOCKED)[0].time == 14
        assert hi.finished_at == 22
        assert lo.finished_at == 30

    def test_no_contention_no_blocking(self):
        ts, _ = two_task_setup()
        sections = [SectionSpec("lo", "r1", 0, 12), SectionSpec("hi", "r2", 2, 3)]
        res = simulate(ts, horizon=100, sections=sections, protocol=LockProtocol.PIP)
        assert res.trace.of_kind(EventKind.BLOCKED) == []
        assert res.job("hi", 0).finished_at == 15  # pure preemption

    def test_inheritance_shields_from_middle_priority(self):
        # Classic unbounded-inversion scenario: without inheritance,
        # mid would starve lo while hi waits.  With PIP, lo runs at
        # hi's priority and mid is kept out.
        ts = TaskSet(
            [
                Task("hi", cost=10, period=200, priority=10, offset=5),
                Task("mid", cost=50, period=300, priority=5, offset=6),
                Task("lo", cost=20, period=400, priority=1),
            ]
        )
        sections = [SectionSpec("lo", "r", 0, 12), SectionSpec("hi", "r", 2, 3)]
        res = simulate(ts, horizon=400, sections=sections, protocol=LockProtocol.PIP)
        hi = res.job("hi", 0)
        # hi: 2 before block + blocked 7..14 + 8 after = ends 22.
        assert hi.finished_at == 22
        # mid runs only after hi completed.
        assert res.job("mid", 0).started_at >= 22

    def test_transitive_inheritance_chain(self):
        # lo holds r1; mid holds r2 and blocks on r1; hi blocks on r2:
        # lo must inherit hi's priority through mid.
        ts = TaskSet(
            [
                Task("hi", cost=10, period=500, priority=10, offset=12),
                Task("mid", cost=20, period=500, priority=5, offset=5),
                Task("noise", cost=30, period=500, priority=7, offset=13),
                Task("lo", cost=20, period=500, priority=1),
            ]
        )
        sections = [
            SectionSpec("lo", "r1", 0, 15),
            SectionSpec("mid", "r2", 0, 10),
            SectionSpec("mid", "r1", 2, 5),
            SectionSpec("hi", "r2", 2, 3),
        ]
        res = simulate(ts, horizon=500, sections=sections, protocol=LockProtocol.PIP)
        lo = res.job("lo", 0)
        noise = res.job("noise", 0)
        # While hi is blocked, lo runs with inherited priority 10 and
        # 'noise' (priority 7) cannot interleave before hi finishes.
        hi = res.job("hi", 0)
        assert noise.started_at >= hi.finished_at
        assert res.missed() == []

    def test_stopped_job_releases_locks(self):
        from repro.core.faults import CostOverrun, FaultInjector
        from repro.core.treatments import TreatmentKind

        ts = TaskSet(
            [
                Task("hi", cost=10, period=100, deadline=50, priority=10, offset=5),
                Task("lo", cost=20, period=200, deadline=190, priority=1),
            ]
        )
        sections = [SectionSpec("lo", "r", 0, 12), SectionSpec("hi", "r", 2, 3)]
        # lo overruns massively; the treatment stops it while it holds r.
        faults = FaultInjector([CostOverrun("lo", 0, 500)])
        res = simulate(
            ts,
            horizon=200,
            sections=sections,
            protocol=LockProtocol.PIP,
            faults=faults,
            treatment=TreatmentKind.IMMEDIATE_STOP,
        )
        lo = res.job("lo", 0)
        assert lo.was_stopped
        # hi eventually got the resource and completed.
        assert res.job("hi", 0).finished_at is not None
        assert not res.job("hi", 0).deadline_missed


class TestIcpp:
    def test_no_blocking_events_ever(self):
        ts, sections = two_task_setup()
        res = simulate(ts, horizon=100, sections=sections, protocol=LockProtocol.ICPP)
        assert res.trace.of_kind(EventKind.BLOCKED) == []

    def test_delayed_start_instead_of_block(self):
        ts, sections = two_task_setup()
        res = simulate(ts, horizon=100, sections=sections, protocol=LockProtocol.ICPP)
        hi = res.job("hi", 0)
        # lo holds r under the ceiling (10) until progress 12: hi,
        # released at 5, starts only at 12.
        assert hi.started_at == 12
        assert hi.finished_at == 22

    def test_ceiling_drops_after_release(self):
        ts, sections = two_task_setup()
        res = simulate(ts, horizon=100, sections=sections, protocol=LockProtocol.ICPP)
        lo = res.job("lo", 0)
        # After releasing at t=12, lo is preempted by hi and finishes
        # its remaining 8 units after hi's completion.
        assert lo.finished_at == 30

    def test_same_outcome_for_uncontended(self):
        ts = TaskSet([Task("t", cost=10, period=20, priority=1)])
        sections = [SectionSpec("t", "r", 2, 4)]
        res = simulate(ts, horizon=59, sections=sections, protocol=LockProtocol.ICPP)
        assert all(j.finished_at - j.release == 10 for j in res.jobs_of("t"))
        assert len(res.trace.of_kind(EventKind.LOCK)) == 3


@st.composite
def locking_systems(draw):
    """Feasible 3-task systems with one shared resource."""
    periods = draw(
        st.tuples(st.integers(30, 60), st.integers(60, 120), st.integers(120, 240))
    )
    costs = draw(
        st.tuples(st.integers(2, 8), st.integers(2, 12), st.integers(4, 20))
    )
    tasks = [
        Task("hi", cost=costs[0], period=periods[0], priority=3),
        Task("mid", cost=costs[1], period=periods[1], priority=2),
        Task("lo", cost=costs[2], period=periods[2], priority=1),
    ]
    ts = TaskSet(tasks)
    sections = []
    for t in tasks:
        if draw(st.booleans()):
            duration = draw(st.integers(1, t.cost))
            start = draw(st.integers(0, t.cost - duration))
            sections.append(SectionSpec(t.name, "res", start, duration))
    return ts, sections


class TestAgainstAnalysis:
    @given(locking_systems())
    @settings(max_examples=40, deadline=None)
    def test_simulated_responses_within_blocking_aware_wcrt(self, system):
        ts, sections = system
        analysis_sections = [s.as_analysis_section() for s in sections]
        for protocol, bound_fn in (
            (LockProtocol.ICPP, blocking_times_pcp),
            (LockProtocol.PIP, blocking_times_pip),
        ):
            blocking = bound_fn(ts, analysis_sections)
            bounds = {}
            feasible = True
            for t in ts:
                r = response_time_with_blocking(t, ts, blocking)
                if r is None or r > t.deadline:
                    feasible = False
                    break
                bounds[t.name] = r
            assume(feasible)
            horizon = 4 * max(t.period for t in ts)
            res = simulate(ts, horizon=horizon, sections=sections, protocol=protocol)
            assert res.missed() == [], protocol
            for t in ts:
                observed = res.max_response_time(t.name)
                if observed is not None:
                    assert observed <= bounds[t.name], (protocol, t.name)
