"""ASCII time-series charts — the paper's measurement tool #2 (§5).

"A second tool provides a chart of these data in the form of a time
series chart."  Figures 3-7 are such charts; this module renders the
same information from a :class:`~repro.sim.simulation.SimResult`:

* ``^`` job releases (the paper's up-arrows),
* ``v`` deadlines (down-arrows), ``!`` missed deadlines,
* ``D`` detector releases (the paper's black squares),
* ``>`` worst-case response-time marks (when thresholds are supplied),
* ``#`` the task executing, ``.`` released but preempted/waiting,
* ``X`` the instant a task is stopped by a treatment.

Each task gets two rows — a marker row and an execution row — over a
shared time axis in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simulation import SimResult
from repro.sim.trace import EventKind
from repro.units import MS

__all__ = ["render_timeline", "TimelineOptions"]

LEGEND = (
    "legend: ^ release  v deadline  ! deadline miss  D detector  "
    "> WCRT mark  # executing  . waiting  X stopped  L lock  u unlock  "
    "b blocked"
)


@dataclass(frozen=True)
class TimelineOptions:
    """Rendering window and scale."""

    start: int | None = None  # ns; default: first event
    end: int | None = None  # ns; default: horizon
    width: int = 100  # columns for the time span
    show_legend: bool = True


def render_timeline(
    result: SimResult,
    options: TimelineOptions = TimelineOptions(),
    *,
    thresholds: dict[str, int] | None = None,
) -> str:
    """Render the run as the paper's chart style.

    *thresholds* maps task name to the response-time bound to mark with
    ``>`` after each release (e.g. the WCRTs of the active plan).
    """
    start = options.start if options.start is not None else 0
    end = options.end if options.end is not None else result.horizon
    if end <= start:
        raise ValueError("end must be > start")
    width = max(options.width, 10)
    span = end - start

    def col(t: int) -> int | None:
        if t < start or t > end:
            return None
        c = (t - start) * (width - 1) // span
        return int(c)

    names = [t.name for t in result.taskset]
    label_w = max(len(n) for n in names) + 2
    lines: list[str] = []
    header = f"time window: {start / MS:g}..{end / MS:g} ms"
    lines.append(header)

    for name in names:
        markers = [" "] * width
        execrow = [" "] * width

        def put(row: list[str], t: int, ch: str, *, keep: str = "") -> None:
            c = col(t)
            if c is None:
                return
            if keep and row[c] in keep:
                return
            row[c] = ch

        task = result.taskset[name]
        for e in result.trace.for_task(name):
            if e.kind is EventKind.RELEASE:
                put(markers, e.time, "^", keep="!D")
                if thresholds and name in thresholds:
                    put(markers, e.time + thresholds[name], ">", keep="!D^")
                put(markers, e.time + task.deadline, "v", keep="!D^>")
            elif e.kind is EventKind.DEADLINE_MISS:
                put(markers, e.time, "!")
            elif e.kind is EventKind.DETECTOR_FIRE:
                put(markers, e.time, "D", keep="!")
            elif e.kind is EventKind.STOP:
                put(execrow, e.time, "X")
            elif e.kind is EventKind.LOCK:
                put(markers, e.time, "L", keep="!D")
            elif e.kind is EventKind.UNLOCK:
                put(markers, e.time, "u", keep="!DL")
            elif e.kind is EventKind.BLOCKED:
                put(execrow, e.time, "b")

        # Waiting spans: from release to finish, as dots under the hash
        # marks; execution intervals overwrite with '#'.
        for job in result.jobs_of(name):
            finish = job.finished_at if job.finished_at is not None else end
            if finish <= start or job.release >= end:
                continue
            a = col(max(job.release, start))
            b = col(min(finish, end))
            assert a is not None and b is not None
            for c in range(a, b + 1):
                if execrow[c] == " ":
                    execrow[c] = "."
        for (b, e_, _job) in result.trace.execution_intervals(name):
            if e_ <= start or b >= end:
                continue
            c0 = col(max(b, start)) or 0
            c1 = col(min(e_, end))
            c1 = c1 if c1 is not None else width - 1
            for c in range(c0, c1 + 1):
                if execrow[c] not in "Xb":
                    execrow[c] = "#"

        lines.append(f"{name:<{label_w}}{''.join(markers)}")
        lines.append(f"{'':<{label_w}}{''.join(execrow)}")

    for axis_line in _axis(start, end, width):
        lines.append(f"{'':<{label_w}}{axis_line}")
    if options.show_legend:
        lines.append(LEGEND)
    return "\n".join(lines)


def _axis(start: int, end: int, width: int) -> tuple[str, str]:
    """A ruler line and a label line with ~5 ticks in milliseconds."""
    ruler = ["-"] * width
    labels = [" "] * width
    n_ticks = 5
    for i in range(n_ticks + 1):
        t = start + (end - start) * i // n_ticks
        c = (t - start) * (width - 1) // (end - start)
        ruler[c] = "+"
        text = f"{t / MS:g}"
        pos = min(max(c - len(text) // 2, 0), width - len(text))
        for k, ch in enumerate(text):
            labels[pos + k] = ch
    return "".join(ruler), "".join(labels)
