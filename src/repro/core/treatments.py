"""Fault treatments — paper §4.

Once a worst-case response-time overrun is detected, the goal is to
prevent a faulty high-priority task from causing the failure of
*non-faulty* lower-priority tasks.  The paper compares:

* ``NO_DETECTION``      — baseline, nothing installed (Figure 3);
* ``DETECT_ONLY``       — detectors installed, faults logged but not
                          treated (Figure 4);
* ``IMMEDIATE_STOP``    — §4.1: the faulty task is stopped as soon as
                          its detector fires (Figure 5), pessimistic;
* ``EQUITABLE_ALLOWANCE`` — §4.2: every task may overrun by the same
                          allowance ``A``; detectors move to the
                          allowance-adjusted WCRTs (Figure 6);
* ``SYSTEM_ALLOWANCE``  — §4.3: the whole free time of the system goes
                          to the *first* faulty task, with the residue
                          available to later faults (Figure 7).

A :class:`TreatmentPlan` is the *static* product of admission control:
detector placements and stop thresholds.  :meth:`TreatmentPlan.runtime`
creates the per-run mutable state (notably the §4.3 residual-allowance
book-keeping) that the simulator drives through ``on_detect`` /
``on_job_end`` callbacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.allowance import (
    EquitableAllowance,
    ResidualAllowanceManager,
    compute_equitable,
)
from repro.core.context import AnalysisContext
from repro.core.detection import EXACT, DetectorSpec, Rounding, plan_detectors
from repro.core.task import TaskSet

__all__ = [
    "TreatmentKind",
    "StopDirective",
    "TreatmentPlan",
    "TreatmentRuntime",
    "plan_treatment",
]


class TreatmentKind(enum.Enum):
    """The five configurations compared in the paper's §6."""

    NO_DETECTION = "no-detection"
    DETECT_ONLY = "detect-only"
    IMMEDIATE_STOP = "immediate-stop"
    EQUITABLE_ALLOWANCE = "equitable-allowance"
    SYSTEM_ALLOWANCE = "system-allowance"

    @property
    def installs_detectors(self) -> bool:
        return self is not TreatmentKind.NO_DETECTION

    @property
    def stops_tasks(self) -> bool:
        return self in (
            TreatmentKind.IMMEDIATE_STOP,
            TreatmentKind.EQUITABLE_ALLOWANCE,
            TreatmentKind.SYSTEM_ALLOWANCE,
        )


@dataclass(frozen=True)
class StopDirective:
    """Instruction returned by the runtime when a detector fires.

    ``at`` is the absolute time at which the job must be stopped if it
    is still running (equal to the detection time for an immediate
    stop).  ``granted`` records the §4.3 grant for reporting.
    """

    at: int
    granted: int = 0


@dataclass(frozen=True)
class TreatmentPlan:
    """Static detector/stop configuration for one task set.

    Produced by :func:`plan_treatment` from a *feasible* task set; the
    per-task ``wcrt`` map is the admission-control by-product the
    paper's detectors reuse.
    """

    kind: TreatmentKind
    taskset: TaskSet
    wcrt: Mapping[str, int]
    detectors: Mapping[str, DetectorSpec]
    equitable: EquitableAllowance | None = None
    system_grants: Mapping[str, int] | None = None

    def detector_for(self, name: str) -> DetectorSpec | None:
        """Detector placement for the named task (None = no detector)."""
        return self.detectors.get(name)

    def runtime(self) -> "TreatmentRuntime":
        """Fresh mutable per-run state for this plan."""
        manager = (
            ResidualAllowanceManager(self.taskset)
            if self.kind is TreatmentKind.SYSTEM_ALLOWANCE
            else None
        )
        return TreatmentRuntime(plan=self, manager=manager)


@dataclass
class TreatmentRuntime:
    """Per-simulation mutable treatment state.

    The simulator calls :meth:`on_detect` when a detector fires and the
    watched job is still unfinished, and :meth:`on_job_end` whenever a
    job completes or is stopped, so the §4.3 policy can account for the
    overrun actually consumed.
    """

    plan: TreatmentPlan
    manager: ResidualAllowanceManager | None = None
    detections: list[tuple[str, int, int]] = field(default_factory=list)

    def on_detect(self, name: str, job: int, release: int, now: int) -> StopDirective | None:
        """Detector fired at *now* for the job of *name* released at
        *release*; the job has not finished.  Returns what to do.

        For every stopping policy the allowance is folded into the
        detector offset itself (adjusted WCRT for §4.2, system-adjusted
        WCRT for §4.3), so a detection always means "stop now".  The
        §4.3 residual rule needs no runtime book-keeping: a
        higher-priority task's consumed overrun delays lower tasks'
        completions by the same amount, so the static threshold grants
        exactly the unconsumed residue to the next faulty task.
        """
        self.detections.append((name, job, now))
        kind = self.plan.kind
        if kind in (TreatmentKind.NO_DETECTION, TreatmentKind.DETECT_ONLY):
            return None
        granted = self.plan.detectors[name].nominal_offset - self.plan.wcrt[name]
        return StopDirective(at=now, granted=granted)

    def on_job_end(self, name: str, job: int, release: int, end: int, stopped: bool) -> None:
        """Account the overrun a finished/stopped job actually consumed
        (kept for §4.3 diagnostics; the stop decision does not use it)."""
        if self.manager is None:
            return
        overrun = end - (release + self.plan.wcrt[name])
        if overrun > 0:
            self.manager.record_overrun(name, overrun)


def plan_treatment(
    taskset: TaskSet,
    kind: TreatmentKind,
    rounding: Rounding = EXACT,
    *,
    context: AnalysisContext | None = None,
) -> TreatmentPlan:
    """Run admission control and build the treatment configuration.

    Raises :class:`ValueError` when the task set fails admission
    control — consistent with the paper, where detectors reuse data
    "calculated during control of admission" and a rejected system is
    never started.

    *rounding* models the VM timer quirk (§6.2) and applies to detector
    release offsets only; the §4.3 stop deadline is computed from the
    nominal WCRT so a rounded detector never shrinks the grant.

    One :class:`AnalysisContext` (the caller's, when provided over the
    same set) backs the admission analysis and every allowance search.
    """
    if context is not None and context.taskset != taskset:
        context = None
    ctx = context if context is not None else AnalysisContext(taskset)
    report = ctx.analyze()
    if not report.feasible:
        raise ValueError("task set rejected by admission control")
    wcrt: dict[str, int] = {name: r.wcrt for name, r in report.per_task.items()}  # type: ignore[misc]

    if kind is TreatmentKind.NO_DETECTION:
        return TreatmentPlan(kind=kind, taskset=taskset, wcrt=wcrt, detectors={})

    equitable = None
    grants = None
    if kind is TreatmentKind.EQUITABLE_ALLOWANCE:
        equitable = compute_equitable(taskset, context=ctx)
        thresholds: Mapping[str, int] = equitable.stop_after
    elif kind is TreatmentKind.SYSTEM_ALLOWANCE:
        from repro.core.allowance import system_adjusted_wcrt, system_allowance

        grants = system_allowance(taskset, context=ctx)
        thresholds = system_adjusted_wcrt(taskset, context=ctx, grants=grants)
    else:
        thresholds = wcrt

    detectors = plan_detectors(taskset, thresholds, rounding)
    return TreatmentPlan(
        kind=kind,
        taskset=taskset,
        wcrt=wcrt,
        detectors=detectors,
        equitable=equitable,
        system_grants=grants,
    )
