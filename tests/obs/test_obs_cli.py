"""The observability surface end to end: experiments CLI flags and the
``python -m repro.obs`` tooling."""

import json

import pytest

from repro.experiments.cli import main as experiments_main
from repro.obs.cli import main as obs_main
from repro.obs.runtime import ObsConfig, activate, current
from repro.obs.sinks import read_jsonl
from repro.sim.trace import EventKind, MemorySink


@pytest.fixture()
def obs_run(tmp_path, capsys):
    """One figure5 run with every observability flag on.

    Yields ``(status, trace_path, metrics_path, stdout)`` — the run's
    output is captured here because fixture-time prints land before a
    test's own ``capsys`` window opens.
    """
    trace = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.json"
    status = experiments_main(
        [
            "figure5",
            "--no-cache",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
            "--profile",
        ]
    )
    return status, trace, metrics, capsys.readouterr().out


class TestRuntimeConfig:
    def test_activation_scoped(self):
        assert current() is None
        cfg = ObsConfig(sink=MemorySink())
        with activate(cfg):
            assert current() is cfg
        assert current() is None

    def test_nested_activation_restores_previous(self):
        outer, inner = ObsConfig(), ObsConfig()
        with activate(outer):
            with activate(inner):
                assert current() is inner
            assert current() is outer


class TestExperimentsCliFlags:
    def test_obs_run_outputs(self, obs_run):
        status, trace, metrics, out = obs_run
        assert status == 0
        # Trace: simulator events plus exec spans, losslessly readable.
        events = read_jsonl(trace)
        kinds = {e.kind for e in events}
        assert EventKind.COMPLETE in kinds
        assert EventKind.SPAN in kinds
        # Metrics: histograms, cache stats and exec telemetry present.
        doc = json.loads(metrics.read_text())
        assert any(k.startswith("task_response_time_ns") for k in doc["histograms"])
        assert doc["counters"]["engine_runs_total"] == 1
        assert set(doc["cache"]) >= {"hits", "misses", "stores", "evictions"}
        assert doc["exec"]["specs"] == 1
        assert doc["engine_profile"]
        # Profiler table and summary lines on stdout.
        assert "Engine profile" in out
        assert "engine throughput" in out
        assert "wrote trace" in out
        assert "wrote metrics" in out

    def test_analysis_only_exhibit_still_produces_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert experiments_main(
            ["table2", "--no-cache", "--trace-out", str(trace)]
        ) == 0
        events = read_jsonl(trace)
        assert events  # exec spans even though table2 never simulates
        assert all(e.kind is EventKind.SPAN for e in events)

    def test_obs_flags_force_serial_and_bypass_cache(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert experiments_main(
            ["table2", "--jobs", "4", "--cache", str(tmp_path / "cache"),
             "--trace-out", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "force a serial run" in out
        assert "bypass the result cache" in out
        assert not (tmp_path / "cache").exists()

    def test_cache_stats_in_summary_line(self, tmp_path, capsys):
        assert experiments_main(["table2", "--cache", str(tmp_path / "c")]) == 0
        assert experiments_main(["table2", "--cache", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        # Second invocation: served from cache.
        assert "1 from cache (100% hit rate)" in out
        assert "cache: hits=1 misses=0 stores=0 evictions=0" in out

    def test_manifest_fingerprint_unchanged_by_telemetry(self, tmp_path, capsys):
        # Serial vs parallel manifests still fingerprint identically
        # with the telemetry section present.
        for sub, jobs in (("serial", "1"), ("pool", "4")):
            assert experiments_main(
                ["table2", "figure5", "--no-cache", "--jobs", jobs,
                 "--manifest", str(tmp_path / sub)]
            ) == 0
        load = lambda sub: json.loads(  # noqa: E731
            (tmp_path / sub / "manifest.json").read_text()
        )
        serial, pooled = load("serial"), load("pool")
        assert "telemetry" in serial and "telemetry" in pooled
        from repro.exec.manifest import manifest_fingerprint

        assert manifest_fingerprint(serial) == manifest_fingerprint(pooled)


class TestObsCli:
    def test_inspect(self, obs_run, capsys):
        _, trace, _, _ = obs_run
        capsys.readouterr()
        assert obs_main(["inspect", str(trace), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "complete" in out

    def test_convert_default_output(self, obs_run, capsys):
        _, trace, _, _ = obs_run
        assert obs_main(["convert", str(trace), "--to", "chrome"]) == 0
        chrome = trace.with_suffix(".chrome.json")
        assert chrome.exists()
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i", "M"}

    def test_convert_explicit_output(self, obs_run, tmp_path, capsys):
        _, trace, _, _ = obs_run
        dst = tmp_path / "out.json"
        assert obs_main(["convert", str(trace), "-o", str(dst)]) == 0
        assert dst.exists()

    def test_summarize_table(self, obs_run, capsys):
        _, trace, _, _ = obs_run
        capsys.readouterr()
        assert obs_main(["summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "tau1" in out
        assert "releases" in out

    def test_summarize_json(self, obs_run, capsys):
        _, trace, _, _ = obs_run
        capsys.readouterr()
        assert obs_main(["summarize", str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(k.startswith("task_response_time_ns") for k in doc["histograms"])

    def test_missing_file(self, capsys):
        assert obs_main(["inspect", "no/such/file.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_module_entry_point(self, obs_run):
        import subprocess
        import sys

        _, trace, _, _ = obs_run
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "inspect", str(trace)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
        )
        assert proc.returncode == 0, proc.stderr
        assert "events" in proc.stdout


class TestSweepScaleCli:
    """The --telemetry/--progress/--flight flags and the progress,
    replay and dashboard subcommands, end to end."""

    def test_sweep_with_telemetry_progress_and_dashboard(self, tmp_path, capsys):
        out = tmp_path / "out"
        status = experiments_main(
            [
                "sweep", "landscape-smoke",
                "--jobs", "2",
                "--cache", str(tmp_path / "cache"),
                "--manifest", str(out),
                "--telemetry",
                "--progress", str(out / "progress.jsonl"),
                "--flight", str(out / "flight"),
            ]
        )
        assert status == 0
        assert "telemetry:" in capsys.readouterr().out
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["telemetry"]["aggregate"]["counters"]["sweep_points_total"] == 504

        assert obs_main(["progress", str(out / "progress.jsonl")]) == 0
        progress_out = capsys.readouterr().out
        assert "finished" in progress_out
        assert "fingerprint" in progress_out

        assert obs_main(["dashboard", str(out)]) == 0
        capsys.readouterr()
        html = (out / "dashboard.html").read_text()
        assert "<h2>run</h2>" in html
        assert "sweep acceptance" in html

    def test_replay_exit_codes(self, tmp_path, capsys):
        assert obs_main(["replay", str(tmp_path / "missing.json")]) == 2
        assert "no such bundle" in capsys.readouterr().err

    def test_dashboard_missing_dir(self, tmp_path, capsys):
        assert obs_main(["dashboard", str(tmp_path / "nope")]) == 2
        assert "no such output directory" in capsys.readouterr().err

    def test_report_html_target(self, tmp_path, capsys):
        page = tmp_path / "report.html"
        assert experiments_main(["report", "--html", str(page), "--no-cache"]) == 0
        assert page.exists()
        assert "paper claims reproduced" in page.read_text()
