"""Machine-generated paper-vs-measured report.

:func:`generate_report` reruns every exhibit through the batch
executor and renders a Markdown summary with each claim's verdict —
the live counterpart of the hand-written EXPERIMENTS.md (useful after
modifying the analysis or the simulator:
``python -m repro.experiments report > report.md``).
:func:`generate_html_report` renders the same verdicts in the obs
dashboard's house style (``report --html report.html``).
"""

from __future__ import annotations

import html
from dataclasses import dataclass

from repro.exec.executor import Executor, LocalExecutor
from repro.experiments.registry import build_exhibit, paper_specs

__all__ = [
    "ReportEntry",
    "generate_entries",
    "generate_html_report",
    "generate_report",
]


@dataclass(frozen=True)
class ReportEntry:
    """One exhibit's verdict."""

    name: str
    claims_total: int
    claims_holding: int
    rendering: str

    @property
    def ok(self) -> bool:
        return self.claims_holding == self.claims_total


def generate_entries(executor: Executor | None = None) -> list[ReportEntry]:
    """Run every registered experiment and collect verdicts."""
    executor = executor if executor is not None else LocalExecutor()
    entries = []
    for run in executor.run(paper_specs(), build_exhibit):
        claims = run.value.claims()
        entries.append(
            ReportEntry(
                name=run.spec.name,
                claims_total=len(claims),
                claims_holding=sum(1 for c in claims if c.holds),
                rendering=run.value.render(),
            )
        )
    return entries


def generate_report(
    *, include_renderings: bool = True, executor: Executor | None = None
) -> str:
    """The full Markdown report."""
    entries = generate_entries(executor)
    lines = [
        "# Reproduction report — Fault Tolerance with Real-Time Java",
        "",
        "| exhibit | claims | verdict |",
        "|---|---|---|",
    ]
    for e in entries:
        verdict = "all hold" if e.ok else f"{e.claims_holding}/{e.claims_total} hold"
        lines.append(f"| {e.name} | {e.claims_total} | {verdict} |")
    total = sum(e.claims_total for e in entries)
    holding = sum(e.claims_holding for e in entries)
    lines.append("")
    lines.append(f"**{holding}/{total} paper claims reproduced.**")
    if include_renderings:
        for e in entries:
            lines.append("")
            lines.append(f"## {e.name}")
            lines.append("")
            lines.append("```")
            lines.append(e.rendering)
            lines.append("```")
    return "\n".join(lines) + "\n"


def generate_html_report(
    *, include_renderings: bool = True, executor: Executor | None = None
) -> str:
    """The full report as a standalone HTML page (dashboard style)."""
    from repro.obs.dashboard import wrap_page

    entries = generate_entries(executor)
    total = sum(e.claims_total for e in entries)
    holding = sum(e.claims_holding for e in entries)
    body = [
        "<h1>Reproduction report — Fault Tolerance with Real-Time Java</h1>",
        "<table><tr><th>exhibit</th><th>claims</th><th>verdict</th></tr>",
    ]
    for e in entries:
        verdict = (
            "<span class='ok'>all hold</span>"
            if e.ok
            else f"<span class='bad'>{e.claims_holding}/{e.claims_total} hold</span>"
        )
        body.append(
            f"<tr><td><a href='#exhibit-{html.escape(e.name)}'>"
            f"{html.escape(e.name)}</a></td>"
            f"<td>{e.claims_total}</td><td>{verdict}</td></tr>"
        )
    body.append("</table>")
    body.append(f"<p><strong>{holding}/{total} paper claims reproduced.</strong></p>")
    if include_renderings:
        for e in entries:
            body.append(f"<h2 id='exhibit-{html.escape(e.name)}'>{html.escape(e.name)}</h2>")
            body.append(f"<pre>{html.escape(e.rendering)}</pre>")
    return wrap_page("Reproduction report", "".join(body))
