"""Execution traces — the paper's measurement substrate (§5).

The paper's tooling collects "the key dates in the system life": job
beginnings (``computeBeforePeriodic``), job ends
(``computeAfterPeriodic``) and detector releases, buffered in memory and
dumped at the end of the run.  :class:`Trace` is the equivalent here,
with a few extra event kinds the simulator can observe exactly
(preemptions, deadline misses, stops) that the paper reads off its
charts.

A trace is an append-only list of :class:`TraceEvent`, plus query
helpers used by the metrics and chart layers.  Events can additionally
be streamed to a :class:`TraceSink` as they are recorded — the
observability layer (:mod:`repro.obs`) provides file-backed sinks
(JSONL, Chrome ``trace_event``) so long-horizon runs need not hold the
whole event log in memory (``Trace(sink, retain=False)``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, runtime_checkable

__all__ = [
    "EventKind",
    "TraceEvent",
    "TraceSink",
    "MemorySink",
    "NullSink",
    "TeeSink",
    "Trace",
]


class EventKind(enum.Enum):
    """What happened at a trace point."""

    RELEASE = "release"  # job activated (period boundary)
    START = "start"  # job first dispatched (computeBeforePeriodic)
    PREEMPT = "preempt"  # job descheduled by a higher priority job
    RESUME = "resume"  # job dispatched again
    COMPLETE = "complete"  # job finished normally (computeAfterPeriodic)
    STOP = "stop"  # job terminated by a treatment
    DEADLINE_MISS = "deadline-miss"  # absolute deadline passed, job unfinished
    JOB_SKIP = "job-skip"  # job dropped at release by a weakly-hard plan
    ESCALATE = "escalate"  # MISS_BUDGET window exhausted, stop issued
    DETECTOR_FIRE = "detector-fire"  # periodic detector released
    FAULT_DETECTED = "fault-detected"  # detector found the job unfinished
    IDLE = "idle"  # processor became idle
    LOCK = "lock"  # job acquired a shared resource
    UNLOCK = "unlock"  # job released a shared resource
    BLOCKED = "blocked"  # job blocked on a held resource (PIP)
    UNBLOCKED = "unblocked"  # blocked job granted the resource
    SPAN = "span"  # host-side span (exec layer); info = duration ns


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped observation.

    ``job`` is the 0-based job index within the task (−1 for events not
    tied to a specific job).  ``info`` carries event-specific details
    (e.g. the allowance granted at a detection).
    """

    time: int
    kind: EventKind
    task: str
    job: int = -1
    info: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        j = f"#{self.job}" if self.job >= 0 else ""
        return f"[{self.time}] {self.kind.value} {self.task}{j}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "time": self.time,
            "kind": self.kind.value,
            "task": self.task,
            "job": self.job,
            "info": self.info,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        """Reconstruct an event from :meth:`to_dict` output (lossless)."""
        return cls(
            time=int(data["time"]),
            kind=EventKind(data["kind"]),
            task=str(data["task"]),
            job=int(data.get("job", -1)),
            info=int(data.get("info", 0)),
        )


@runtime_checkable
class TraceSink(Protocol):
    """Streaming consumer of trace events.

    Implementations must tolerate :meth:`emit` being called once per
    event on the simulator's hot path; :meth:`close` flushes whatever
    the sink buffers (file sinks become invalid to emit to afterwards).
    """

    def emit(self, event: TraceEvent) -> None:
        ...

    def close(self) -> None:
        ...


class MemorySink:
    """Keep every event in memory — the classic §5 in-memory log."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class NullSink:
    """Discard every event (measures the cost of the sink plumbing)."""

    def emit(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


class TeeSink:
    """Fan one event stream out to several sinks."""

    def __init__(self, sinks: list[TraceSink] | tuple[TraceSink, ...]):
        self.sinks = list(sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class Trace:
    """Append-only event log with query helpers.

    *sink* (optional) receives every event as it is recorded, in
    addition to the in-memory log; *retain=False* drops the in-memory
    log entirely (bounded memory for long-horizon streaming runs — the
    query helpers then see an empty trace).
    """

    def __init__(self, sink: TraceSink | None = None, *, retain: bool = True) -> None:
        self._events: list[TraceEvent] = []
        self._sink = sink
        self._retain = retain

    @property
    def sink(self) -> TraceSink | None:
        return self._sink

    def record(
        self, time: int, kind: EventKind, task: str, job: int = -1, info: int = 0
    ) -> None:
        event = TraceEvent(time, kind, task, job, info)
        if self._retain:
            self._events.append(event)
        if self._sink is not None:
            self._sink.emit(event)

    # -- access -------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """Events matching any of *kinds*, in time order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_task(self, task: str) -> list[TraceEvent]:
        return [e for e in self._events if e.task == task]

    def filter(self, pred: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self._events if pred(e)]

    def deadline_misses(self, task: str | None = None) -> list[TraceEvent]:
        """Deadline-miss events, optionally restricted to one task."""
        misses = self.of_kind(EventKind.DEADLINE_MISS)
        return misses if task is None else [e for e in misses if e.task == task]

    def execution_intervals(self, task: str) -> list[tuple[int, int, int]]:
        """CPU intervals ``(begin, end, job)`` reconstructed for *task*.

        Pairs each START/RESUME with the following PREEMPT/COMPLETE/STOP
        of the same task.  An interval left open at the end of the trace
        is dropped (the run was truncated mid-execution).
        """
        out: list[tuple[int, int, int]] = []
        open_at: int | None = None
        open_job = -1
        for e in self._events:
            if e.task != task:
                continue
            if e.kind in (EventKind.START, EventKind.RESUME):
                open_at = e.time
                open_job = e.job
            elif e.kind in (EventKind.PREEMPT, EventKind.COMPLETE, EventKind.STOP):
                if open_at is not None:
                    if e.time > open_at:
                        out.append((open_at, e.time, open_job))
                    open_at = None
        return out

    def end_time(self) -> int:
        """Timestamp of the last event (0 for an empty trace)."""
        return self._events[-1].time if self._events else 0

    def dump(self) -> str:
        """The paper's log-file equivalent: one event per line."""
        return "\n".join(str(e) for e in self._events)

    def close(self) -> None:
        """Flush and close the attached sink (no-op without one)."""
        if self._sink is not None:
            self._sink.close()
