"""Unit tests for the CI benchmark regression guard
(``benchmarks/check_regression.py``)."""

import importlib.util
import json
from pathlib import Path

import pytest

_GUARD = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", _GUARD)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def _write(tmp_path, name, benches):
    path = tmp_path / name
    path.write_text(json.dumps({"schema": 1, "benchmarks": benches}))
    return path


BASE = {
    "bench::throughput": {"wall_s": 1.0, "events": 100, "events_per_s": 100_000},
    "bench::sweep": {"wall_s": 5.0, "systems": 10_000, "systems_per_s": 2_000},
    "bench::walltime_only": {"wall_s": 0.5},
}


class TestCompare:
    def test_identical_results_pass(self):
        assert check_regression.compare(BASE, BASE, 0.2) == []

    def test_within_threshold_passes(self):
        current = {
            "bench::throughput": {"events_per_s": 81_000},
        }
        assert check_regression.compare(BASE, current, 0.2) == []

    def test_beyond_threshold_fails(self):
        current = {
            "bench::throughput": {"events_per_s": 79_000},
        }
        problems = check_regression.compare(BASE, current, 0.2)
        assert len(problems) == 1
        assert "bench::throughput" in problems[0]

    def test_new_entries_without_baseline_pass(self):
        current = dict(BASE)
        current["bench::brand_new"] = {"events_per_s": 1}
        assert check_regression.compare(BASE, current, 0.2) == []

    def test_removed_entries_stop_being_checked(self):
        assert check_regression.compare(BASE, {}, 0.2) == []

    def test_wall_time_only_entries_are_not_gated(self):
        current = {"bench::walltime_only": {"wall_s": 50.0}}
        assert check_regression.compare(BASE, current, 0.2) == []

    def test_tighter_threshold_catches_smaller_drops(self):
        current = {"bench::throughput": {"events_per_s": 95_000}}
        assert check_regression.compare(BASE, current, 0.2) == []
        assert check_regression.compare(BASE, current, 0.01) != []

    def test_systems_per_s_is_gated(self):
        current = {"bench::sweep": {"systems_per_s": 1_500}}
        problems = check_regression.compare(BASE, current, 0.2)
        assert len(problems) == 1
        assert "bench::sweep" in problems[0]
        assert "systems/s" in problems[0]

    def test_systems_per_s_within_threshold_passes(self):
        current = {"bench::sweep": {"systems_per_s": 1_700}}
        assert check_regression.compare(BASE, current, 0.2) == []

    def test_both_metrics_reported_independently(self):
        """One entry can regress on both axes; each gets its own line."""
        both = {
            "bench::dual": {"events_per_s": 100_000, "systems_per_s": 1_000},
        }
        current = {"bench::dual": {"events_per_s": 10, "systems_per_s": 10}}
        problems = check_regression.compare(both, current, 0.2)
        assert len(problems) == 2


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "base.json", BASE)
        assert check_regression.main([str(path), str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", BASE)
        cur = _write(
            tmp_path, "cur.json", {"bench::throughput": {"events_per_s": 1_000}}
        )
        assert check_regression.main([str(base), str(cur)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path):
        base = _write(tmp_path, "base.json", BASE)
        assert check_regression.main([str(base), str(tmp_path / "nope.json")]) == 2

    def test_threshold_env_knob(self, tmp_path, monkeypatch):
        base = _write(tmp_path, "base.json", BASE)
        cur = _write(
            tmp_path, "cur.json", {"bench::throughput": {"events_per_s": 95_000}}
        )
        assert check_regression.main([str(base), str(cur)]) == 0
        monkeypatch.setenv("BENCH_REGRESSION_THRESHOLD", "0.01")
        assert check_regression.main([str(base), str(cur)]) == 1
        # Explicit flag wins over the environment.
        assert check_regression.main([str(base), str(cur), "--threshold", "0.2"]) == 0

    def test_bad_threshold_exits_two(self, tmp_path):
        base = _write(tmp_path, "base.json", BASE)
        assert check_regression.main([str(base), str(base), "--threshold", "1.5"]) == 2

    @pytest.mark.parametrize("payload", ["not json", '{"benchmarks": []}'])
    def test_malformed_results_exit_two(self, tmp_path, payload):
        good = _write(tmp_path, "base.json", BASE)
        bad = tmp_path / "bad.json"
        bad.write_text(payload)
        assert check_regression.main([str(good), str(bad)]) == 2
