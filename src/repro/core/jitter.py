"""Release-jitter-aware response-time analysis.

The paper's detector placement quietly assumes releases happen exactly
at the period boundaries.  On a real VM they do not: the paper itself
measures its detectors firing 1-3 ms late because of timer
quantisation, and the same quantisation affects task releases.  The
standard fixed-priority treatment of such deviations is *release
jitter* (Audsley et al. [1]): a task's jobs become ready at most
``J_i`` after their nominal release.

This module extends the analysis with jitter terms:

* interference from a higher-priority task arrives denser by its
  jitter: ``ceil((w + J_j) / T_j)`` activations in a window ``w``;
* a task's response time, measured from the *nominal* release, grows
  by its own jitter: ``R_i = J_i + w_i``.

With all jitters zero the functions coincide with the plain analysis
(property-tested).  The jitter-aware WCRT gives the correct detector
offset on platforms whose releases are themselves quantised.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.core.allowance import max_such_that
from repro.core.task import Task, TaskSet

__all__ = [
    "response_time_with_jitter",
    "analyze_with_jitter",
    "is_feasible_with_jitter",
    "detector_offsets_with_jitter",
    "max_tolerable_jitter",
]


def _validate(taskset: TaskSet, jitter: Mapping[str, int]) -> None:
    for name, j in jitter.items():
        if name not in taskset:
            raise KeyError(f"jitter for unknown task {name!r}")
        if j < 0:
            raise ValueError(f"{name}: jitter must be >= 0")


def response_time_with_jitter(
    task: Task, taskset: TaskSet, jitter: Mapping[str, int]
) -> int | None:
    """Jitter-aware WCRT of *task* (constrained deadlines).

    Solves ``w = C_i + sum_j ceil((w + J_j) / T_j) * C_j`` and returns
    ``J_i + w``.  Requires ``D_i <= T_i`` (the standard setting; with
    arbitrary deadlines jitter couples with the busy-period iteration
    and is out of the paper's scope).
    """
    _validate(taskset, jitter)
    if not task.constrained:
        raise ValueError("jitter-aware RTA requires D <= T")
    hp = taskset.higher_or_equal_priority(task)
    own_jitter = jitter.get(task.name, 0)
    # A fixed point exists iff the interference utilization is < 1
    # (jitter only shifts the demand curve by a constant); when it
    # exists, ceil(x) <= x + 1 bounds it exactly:
    #   w <= (C + sum C_j (T_j + J_j) / T_j) / (1 - U_hp).
    num = Fraction(0)
    shifted = Fraction(task.cost)
    for t in hp:
        num += Fraction(t.cost, t.period)
        shifted += Fraction(t.cost * (t.period + jitter.get(t.name, 0)), t.period)
    if num >= 1:
        return None
    limit = int(shifted / (1 - num)) + 1
    w = task.cost
    while True:
        demand = task.cost
        for t in hp:
            demand += -(-(w + jitter.get(t.name, 0)) // t.period) * t.cost
        if demand == w:
            return own_jitter + w
        if demand > limit:  # unreachable by the bound; defensive only
            return None
        w = demand


def analyze_with_jitter(
    taskset: TaskSet, jitter: Mapping[str, int]
) -> dict[str, int | None]:
    """Jitter-aware WCRT for every task."""
    return {
        t.name: response_time_with_jitter(t, taskset, jitter) for t in taskset
    }


def is_feasible_with_jitter(
    taskset: TaskSet, jitter: Mapping[str, int]
) -> bool:
    """Admission control under release jitter."""
    for t in taskset:
        r = response_time_with_jitter(t, taskset, jitter)
        if r is None or r > t.deadline:
            return False
    return True


def detector_offsets_with_jitter(
    taskset: TaskSet, jitter: Mapping[str, int]
) -> dict[str, int]:
    """Detector offsets valid on a jittery platform.

    The §3 detector must never fire before the watched job could
    legitimately finish; with release jitter the bound measured from
    the nominal release is the jitter-aware WCRT.  Raises when any task
    is unschedulable under the given jitter (unbounded response, or a
    WCRT past the deadline — such a system fails admission control and
    has no meaningful detector placement).
    """
    out: dict[str, int] = {}
    for t in taskset:
        r = response_time_with_jitter(t, taskset, jitter)
        if r is None or r > t.deadline:
            raise ValueError(f"{t.name}: unschedulable under the given jitter")
        out[t.name] = r
    return out


def max_tolerable_jitter(taskset: TaskSet) -> int:
    """Largest uniform release jitter keeping the system feasible.

    The platform-quality question the §6.2 measurements raise: how
    coarse may the VM's release timing get before the admission
    guarantee collapses?  Binary search, exact.
    """
    if not is_feasible_with_jitter(taskset, {}):
        raise ValueError("system infeasible even without jitter")
    hi = max(t.deadline for t in taskset)

    def pred(j: int) -> bool:
        return is_feasible_with_jitter(taskset, {t.name: j for t in taskset})

    return max_such_that(pred, hi)
