"""Command-line entry point: regenerate the paper's exhibits.

Usage::

    python -m repro.experiments all
    python -m repro.experiments table2 figure7
    python -m repro.experiments figure4 --svg out/
    python -m repro.experiments run my_scenario.txt --treatment immediate-stop
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.treatments import TreatmentKind
from repro.experiments.paper import all_experiments
from repro.experiments.runner import run_scenario
from repro.sim.vm import EXACT_VM, JRATE_VM
from repro.viz.svg import SvgOptions, render_svg
from repro.workloads.parser import load_scenario

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    registry = all_experiments()
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Fault Tolerance "
        "with Real-Time Java' (Masson & Midonnet, 2006).",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help=f"experiment names ({', '.join(registry)}), 'all', or "
        "'run <scenario-file>'",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also write an SVG chart per figure into DIR",
    )
    parser.add_argument(
        "--treatment",
        choices=[k.value for k in TreatmentKind],
        help="treatment override for 'run' targets",
    )
    parser.add_argument(
        "--vm",
        choices=["exact", "jrate"],
        default="exact",
        help="VM profile for 'run' targets (default: exact)",
    )
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if targets and targets[0] == "run":
        return _run_scenario_files(targets[1:], args)
    if targets and targets[0] == "report":
        from repro.experiments.report import generate_report

        print(generate_report())
        return 0
    if "all" in targets:
        targets = list(registry)

    status = 0
    for name in targets:
        if name not in registry:
            print(f"unknown experiment {name!r}; known: {', '.join(registry)}")
            return 2
        exp = registry[name]()
        print(exp.render())
        for claim in exp.claims():
            print(str(claim))
            if not claim.holds:
                status = 1
        print()
        if args.svg and hasattr(exp, "result"):
            out = Path(args.svg)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{name}.svg"
            path.write_text(render_svg(exp.result, SvgOptions(title=exp.name)))
            print(f"wrote {path}")
    return status


def _run_scenario_files(paths: list[str], args: argparse.Namespace) -> int:
    if not paths:
        print("run: need at least one scenario file")
        return 2
    vm = JRATE_VM if args.vm == "jrate" else EXACT_VM
    treatment = TreatmentKind(args.treatment) if args.treatment else None
    for path in paths:
        scenario = load_scenario(path)
        outcome = run_scenario(scenario, vm=vm, treatment=treatment)
        m = outcome.metrics
        print(f"{path}: horizon {m.horizon} ns")
        for name, tm in m.per_task.items():
            print(
                f"  {name}: jobs={tm.jobs} completed={tm.completed} "
                f"stopped={tm.stopped} misses={tm.deadline_misses} "
                f"detected={tm.faults_detected}"
            )
        print(f"  failed: {m.failed_tasks or 'none'}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
