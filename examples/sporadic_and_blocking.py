#!/usr/bin/env python3
"""Sporadic tasks and shared resources — the paper's other §7 axes.

Part 1 (aperiodic tasks): an alarm handler with a minimum interarrival
time is admitted via its dense-pattern periodic equivalent; at runtime
its detector follows the *actual* arrivals, catches an overrunning
alarm and stops it before the control loop misses.

Part 2 (shared resources): the same system with a shared bus adds
blocking terms b_i to the analysis, and the tolerance factor shrinks
accordingly ("the influence of tolerance on the determination of the
blocking time").

Run:  python examples/sporadic_and_blocking.py
"""

from repro import Task, TreatmentKind, ms, to_ms
from repro.core.blocking import (
    CriticalSection,
    blocking_times_pcp,
    equitable_allowance_with_blocking,
    response_time_with_blocking,
)
from repro.core.allowance import equitable_allowance
from repro.core.faults import CostOverrun, FaultInjector
from repro.core.feasibility import analyze
from repro.core.sporadic import SporadicTask, analysis_taskset, poisson_arrivals
from repro.sim import simulate
from repro.viz import TimelineOptions, render_timeline

# -- Part 1: a sporadic alarm among periodic control tasks -----------------
control = Task("control", cost=ms(4), period=ms(20), deadline=ms(20), priority=10)
logger = Task("logger", cost=ms(10), period=ms(100), deadline=ms(90), priority=5)
alarm = SporadicTask(
    "alarm", cost=ms(6), min_interarrival=ms(50), deadline=ms(30), priority=15
)

taskset = analysis_taskset([control, logger], [alarm])
report = analyze(taskset)
print("Admission with the alarm modelled at its densest pattern:")
for name in ("alarm", "control", "logger"):
    print(f"  {name}: WCRT = {to_ms(report.wcrt(name)):g} ms")
assert report.feasible

arrivals = poisson_arrivals(alarm, ms(900), mean_interarrival=ms(150), seed=4)
print(f"\nActual alarm arrivals (ms): {[f'{to_ms(t):g}' for t in arrivals]}")

faulty_alarm = FaultInjector([CostOverrun("alarm", 1, ms(40))])
result = simulate(
    taskset,
    horizon=ms(1000),
    arrivals={"alarm": arrivals},
    faults=faulty_alarm,
    treatment=TreatmentKind.EQUITABLE_ALLOWANCE,
)
stopped = result.stopped("alarm")
print(f"\nSecond alarm overran by 40 ms; stopped jobs: {[(j.name, j.index) for j in stopped]}")
print(f"Deadline misses: {[(j.name, j.index) for j in result.missed()]}")
assert stopped and not result.missed()

window = (max(0, stopped[0].release - ms(20)), stopped[0].release + ms(80))
print(render_timeline(result, TimelineOptions(start=window[0], end=window[1], width=90)))

# -- Part 2: a shared bus introduces blocking -------------------------------
print("\nShared bus: control and logger both lock 'bus'")
sections = [
    CriticalSection("control", "bus", ms(1)),
    CriticalSection("logger", "bus", ms(3)),
    CriticalSection("alarm", "bus", ms(2)),
]
blocking = blocking_times_pcp(taskset, sections)
print(f"  PCP blocking terms: { {n: f'{to_ms(b):g} ms' for n, b in blocking.items()} }")
for name in ("alarm", "control"):
    r = response_time_with_blocking(taskset[name], taskset, blocking)
    print(f"  {name}: WCRT with blocking = {to_ms(r):g} ms")

plain = equitable_allowance(taskset)
with_blocking = equitable_allowance_with_blocking(taskset, sections)
print(
    f"\nTolerance factor: {to_ms(plain):g} ms without blocking, "
    f"{to_ms(with_blocking):g} ms with the shared bus"
)
assert with_blocking <= plain
