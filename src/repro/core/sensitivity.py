"""Sensitivity analysis: multiplicative slack and breakdown load.

The paper's allowance is *additive* — a constant added to each cost.
The classic alternative quantifies slack *multiplicatively*: the
largest factor by which all costs can scale while the system stays
feasible (the "breakdown utilization" view of Lehoczky, Sha & Ding).
Having both lets the experiments compare the paper's design choice
against the standard one:

* the additive allowance favours short tasks (every task gets the same
  absolute tolerance);
* the scaling factor favours long tasks (tolerance proportional to
  cost).

Both searches are exact (binary search over the exact analysis; the
scaling search is in parts-per-million to stay integral).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allowance import equitable_allowance, max_such_that
from repro.core.context import AnalysisContext
from repro.core.task import TaskSet

__all__ = ["scaling_factor_ppm", "breakdown_utilization", "SlackComparison", "compare_slack"]

#: Search granularity for the multiplicative factor: 1e-6.
PPM = 1_000_000


def _scaled(taskset: TaskSet, factor_ppm: int) -> TaskSet | None:
    """The set with every cost multiplied by factor_ppm/1e6 (rounded
    up, floored at 1); None when some cost stops being constructible."""
    try:
        return taskset.with_costs(
            {
                t.name: max(1, -(-t.cost * factor_ppm // PPM))
                for t in taskset
            }
        )
    except ValueError:
        return None


def scaling_factor_ppm(
    taskset: TaskSet, *, context: AnalysisContext | None = None
) -> int:
    """Largest cost-scaling factor (in ppm) keeping the set feasible.

    >= 1_000_000 for a feasible input (scaling by 1.0 is the input
    itself).  Exact to 1 ppm.
    """
    ctx = context if context is not None else AnalysisContext(taskset)
    if not ctx.is_feasible():
        raise ValueError("system must be feasible")
    # Upper bound: scaling beyond min(D/C) breaks the tightest task.
    hi = max((t.deadline * PPM) // t.cost for t in taskset) + PPM

    def pred(extra_ppm: int) -> bool:
        # Same rounding as _scaled; an unconstructible cost means some
        # C > D and C > T, so the scaled set is certainly infeasible.
        factor = PPM + extra_ppm
        costs = {t.name: max(1, -(-t.cost * factor // PPM)) for t in taskset}
        for t in taskset:
            c = costs[t.name]
            if c > t.deadline and c > t.period:
                return False
        return ctx.monotone_view("scale", extra_ppm, costs).feasible

    return PPM + max_such_that(pred, hi)


def breakdown_utilization(taskset: TaskSet) -> float:
    """Utilization of the maximally-scaled system — how much load the
    structure (periods, deadlines, priorities) can actually carry."""
    factor = scaling_factor_ppm(taskset)
    scaled = _scaled(taskset, factor)
    assert scaled is not None
    return scaled.utilization


@dataclass(frozen=True)
class SlackComparison:
    """Additive (paper) vs multiplicative (classic) slack, side by side."""

    taskset: TaskSet
    additive_allowance: int
    scaling_ppm: int

    @property
    def scaling(self) -> float:
        return self.scaling_ppm / PPM

    def additive_tolerance(self, name: str) -> int:
        """Extra time the paper's §4.2 policy grants the named task."""
        return self.additive_allowance

    def multiplicative_tolerance(self, name: str) -> int:
        """Extra time pure cost-scaling would grant the named task."""
        cost = self.taskset[name].cost
        return -(-cost * self.scaling_ppm // PPM) - cost


def compare_slack(taskset: TaskSet) -> SlackComparison:
    """Run both searches on *taskset* (sharing one analysis context)."""
    ctx = AnalysisContext(taskset)
    return SlackComparison(
        taskset=taskset,
        additive_allowance=equitable_allowance(taskset, context=ctx),
        scaling_ppm=scaling_factor_ppm(taskset, context=ctx),
    )
