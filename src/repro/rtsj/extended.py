"""``javax.realtime.extended`` — the paper's package (§2.3, §3.1, §4).

The paper ships its contribution as a new package offering
``RealtimeThreadExtended`` (extending ``RealtimeThread``) and
``FeasibilityAnalysis``:

* ``addToFeasibility()`` / ``removeFromFeasibility()`` are overloaded
  to delegate to :class:`FeasibilityAnalysis`, which implements the
  Figure 2 algorithm (fixing RI's defective test and jRate's missing
  one);
* ``start()`` is overloaded to launch, "just after having called the
  method start() of the super-class", a periodic detector
  (:class:`~repro.rtsj.timer.PeriodicTimer`) with period = the task
  period and offset = the worst-case response time;
* ``waitForNextPeriod()`` is overloaded to bracket each job with
  ``computeAfterPeriodic()`` / ``computeBeforePeriodic()``, which
  maintain the job counter and job-finished boolean the detector reads;
* the detector applies the configured :class:`TreatmentKind` when it
  catches an unfinished job (§4): log only, stop immediately, or stop
  at the allowance-adjusted thresholds.

Under simulation the engine drives job boundaries, so the two compute
methods are invoked from the simulator's job hooks; the overloaded
``waitForNextPeriod`` body is kept verbatim for fidelity and direct
unit testing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core import allowance as _allowance
from repro.core.context import AnalysisContext
from repro.core.task import TaskSet
from repro.core.treatments import TreatmentKind
from repro.rtsj.params import (
    PeriodicParameters,
    PriorityParameters,
    ProcessingGroupParameters,
)
from repro.rtsj.scheduler import ExtendedPriorityScheduler, Scheduler
from repro.rtsj.thread import RealtimeThread
from repro.rtsj.timer import AsyncEventHandler, PeriodicTimer
from repro.sim.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.jobs import Job
    from repro.rtsj.system import RealtimeSystem

__all__ = ["FeasibilityAnalysis", "RealtimeThreadExtended"]


class FeasibilityAnalysis:
    """The class the paper delegates admission control to.

    Static methods over RTSJ threads; each converts to the analysis
    task model and calls the exact algorithms of :mod:`repro.core`.
    """

    #: Shared exact-input WCRT memo: repeated ``addToFeasibility`` /
    #: ``isFeasible`` calls over growing thread sets recompute only the
    #: priority levels each change affects (DESIGN.md §3.5).
    _shared = AnalysisContext(TaskSet([]))

    @staticmethod
    def _taskset(threads: Iterable[RealtimeThread]) -> TaskSet:
        return TaskSet(t.as_task() for t in threads)

    @staticmethod
    def wcResponseTime(  # noqa: N802 - paper naming (Figure 2)
        thread: RealtimeThread, threads: Iterable[RealtimeThread]
    ) -> int | None:
        """Figure 2: worst-case response time of *thread* among
        *threads* (nanoseconds; None = unbounded)."""
        ts = FeasibilityAnalysis._taskset(threads)
        return FeasibilityAnalysis._shared.wcrt_of(ts[thread.name], ts)

    @staticmethod
    def isFeasible(threads: Iterable[RealtimeThread]) -> bool:  # noqa: N802
        ts = FeasibilityAnalysis._taskset(threads)
        return FeasibilityAnalysis._shared.is_feasible_set(ts)

    @staticmethod
    def equitableAllowance(threads: Iterable[RealtimeThread]) -> int:  # noqa: N802
        """§4.2 allowance for the thread set."""
        return _allowance.equitable_allowance(FeasibilityAnalysis._taskset(threads))

    @staticmethod
    def systemAllowance(threads: Iterable[RealtimeThread]) -> dict[str, int]:  # noqa: N802
        """§4.3 per-thread maximal solo overruns."""
        return _allowance.system_allowance(FeasibilityAnalysis._taskset(threads))


class RealtimeThreadExtended(RealtimeThread):
    """The paper's extended thread: admission control + fault detector.

    *treatment* selects the §4 policy applied when this thread's
    detector catches a fault (default: detect only, Figure 4).

    *group* (``ProcessingGroupParameters``) pins the thread to one
    processor for partitioned multiprocessor scheduling; the
    :class:`~repro.rtsj.scheduler.MultiprocessorPriorityScheduler`
    honours the pin during admission.
    """

    def __init__(
        self,
        scheduling: PriorityParameters,
        release: PeriodicParameters,
        system: "RealtimeSystem",
        *,
        name: str | None = None,
        scheduler: Scheduler | None = None,
        treatment: TreatmentKind = TreatmentKind.DETECT_ONLY,
        group: ProcessingGroupParameters | None = None,
    ):
        if scheduler is None and not isinstance(
            system.scheduler, ExtendedPriorityScheduler
        ):
            # The extended thread relies on the corrected analysis even
            # when the system models a defective VM scheduler; all
            # extended threads of one system share the same instance so
            # the feasibility set is complete.
            cached = getattr(system, "_extended_scheduler", None)
            if cached is None:
                cached = ExtendedPriorityScheduler()
                system._extended_scheduler = cached  # type: ignore[attr-defined]
            scheduler = cached
        super().__init__(scheduling, release, system, name=name, scheduler=scheduler)
        self.treatment = treatment
        self._group = group
        # §3.1 state read by the detector.
        self.job_counter = 0  # completed jobs
        self.job_finished = True  # no job in progress initially
        self.detector: PeriodicTimer | None = None
        self.detector_threshold: int | None = None
        self.faults_detected: list[int] = []

    # -- processing-group affinity (partitioned multiprocessor) -------------------
    def getProcessingGroupParameters(self) -> ProcessingGroupParameters | None:  # noqa: N802
        return self._group

    def setProcessingGroupParameters(  # noqa: N802
        self, group: ProcessingGroupParameters | None
    ) -> None:
        self._group = group

    # -- overloaded RTSJ methods (the paper's §2.3, §3.1) -------------------------
    def addToFeasibility(self) -> bool:  # noqa: N802
        """Overloaded to delegate to :class:`FeasibilityAnalysis` over
        the scheduler's current feasibility set (paper §2.3)."""
        self._scheduler.addToFeasibility(self)
        return FeasibilityAnalysis.isFeasible(self._scheduler.feasibility_set)

    def waitForNextPeriod(self) -> bool:  # noqa: N802
        """The paper's overload, verbatim::

            computeAfterPeriodic();
            boolean returnValue = super.waitForNextPeriod();
            computeBeforePeriodic();
            return returnValue;

        Under simulation, job boundaries invoke the two compute methods
        directly; call this only from non-simulated (unit-test) code.
        """
        self.computeAfterPeriodic()
        return_value = super().waitForNextPeriod()
        self.computeBeforePeriodic()
        return return_value

    def computeBeforePeriodic(self) -> None:  # noqa: N802
        """Job begins: lower the finished flag (§3.1)."""
        self.job_finished = False

    def computeAfterPeriodic(self) -> None:  # noqa: N802
        """Job ends: raise the flag, advance the counter (§3.1)."""
        self.job_finished = True
        self.job_counter += 1

    def start(self) -> None:
        """Overloaded start: "starts a periodic detector with an offset
        equal to the worst case response time just after having called
        the method start() of the super-class"."""
        super().start()
        self._detector_requested = self.treatment is not TreatmentKind.NO_DETECTION

    # -- simulation bridge ----------------------------------------------------------
    def _job_started(self, job: "Job") -> None:
        self.computeBeforePeriodic()

    def _job_ended(self, job: "Job") -> None:
        self.computeAfterPeriodic()

    def _pre_run(self, taskset: TaskSet) -> None:
        """Install the detector once the whole system is known.

        The threshold (detector offset after each release) is the §4
        stop bound for the configured treatment; the VM timer rounding
        is applied by the :class:`PeriodicTimer` itself.
        """
        if not getattr(self, "_detector_requested", False):
            return
        task = taskset[self.name]
        threshold = self._threshold(taskset)
        self.detector_threshold = threshold
        handler = AsyncEventHandler(self._detector_check)
        self.detector = PeriodicTimer(
            start=task.offset + threshold,
            interval=task.period,
            handler=handler,
            system=self._system,
        )
        self.detector.start()

    def _analysis_context(self, taskset: TaskSet) -> AnalysisContext:
        """One context per (system, taskset): every extended thread's
        ``_pre_run`` asks for the same allowance searches, so the n
        detectors of a system share one set of warm caches."""
        cached = getattr(self._system, "_analysis_cache", None)
        if cached is None or cached[0] != taskset:
            cached = (taskset, AnalysisContext(taskset))
            self._system._analysis_cache = cached  # type: ignore[attr-defined]
        return cached[1]

    def _threshold(self, taskset: TaskSet) -> int:
        ctx = self._analysis_context(taskset)
        wcrt = ctx.wcrt(self.name)
        if wcrt is None:
            raise ValueError(f"{self.name}: unbounded WCRT; system infeasible")
        if self.treatment is TreatmentKind.EQUITABLE_ALLOWANCE:
            allowance = _allowance.equitable_allowance(taskset, context=ctx)
            return _allowance.adjusted_wcrt(taskset, allowance, context=ctx)[self.name]
        if self.treatment is TreatmentKind.SYSTEM_ALLOWANCE:
            return _allowance.system_adjusted_wcrt(taskset, context=ctx)[self.name]
        return wcrt

    def _detector_check(self, index: int) -> None:
        """The detector body: read the counter/boolean state kept by
        ``waitForNextPeriod`` and treat a caught fault (§3.1, §4)."""
        sim = self._system.simulation
        assert sim is not None
        now = sim.engine.now
        sim.trace.record(now, EventKind.DETECTOR_FIRE, self.name, index)
        job = sim.jobs.get((self.name, index))
        if job is None:
            return  # fired past the last release in the horizon
        finished = self.job_counter >= index + 1
        if finished:
            return
        self.faults_detected.append(index)
        job.fault_detected = True
        sim.trace.record(now, EventKind.FAULT_DETECTED, self.name, index)
        if self.treatment in (
            TreatmentKind.IMMEDIATE_STOP,
            TreatmentKind.EQUITABLE_ALLOWANCE,
            TreatmentKind.SYSTEM_ALLOWANCE,
        ):
            sim.request_stop(job)
