"""Weakly-hard (m, K) miss-pattern semantics.

A weakly-hard constraint ``(m, K)`` (Bernat et al.; Liang et al.,
PAPERS.md arXiv:2008.06192) relaxes the hard-deadline requirement: a
task may miss **at most m deadlines in any window of K consecutive
jobs** while preserving its functional guarantees.  The boundary cases
recover the classic semantics — ``m = 0`` is the hard constraint (no
miss ever) and ``m = K`` is unconstrained (every window may be all
misses).

This module is the *semantics* layer the rest of the stack shares:

* :class:`MKConstraint` — the frozen per-task constraint carried by
  :class:`~repro.core.task.Task`;
* :func:`MKConstraint.satisfies` / :class:`SlidingWindowChecker` — the
  exact sliding-window check over an observed miss pattern, in batch
  (O(n) running sum) and streaming (O(1) per sample) form, property-
  tested against a brute-force O(n·K) reference;
* the **deeply-red skip pattern** arithmetic used by both the
  SKIP_JOB/DEGRADE treatments and the weakly-hard schedulability test
  (:func:`~repro.core.feasibility.weakly_hard_response_time`):
  :meth:`MKConstraint.skips`, :meth:`MKConstraint.max_executed` (the
  interference bound ``f(n)``) and :meth:`MKConstraint.executed_release`
  (the release index ``g(q)`` of the q-th executed job).

The deterministic skip pattern drops job ``j`` iff ``j % K >= K - m``:
the first ``K - m`` jobs of every window execute, the last ``m`` are
skipped.  Any K consecutive indices then contain exactly ``m`` skips,
so the pattern satisfies ``(m, K)`` with zero slack — the Koren-Shasha
*deeply-red* arrangement, which front-loads executed jobs and is the
worst-case alignment the analysis bounds interference with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "MKConstraint",
    "SlidingWindowChecker",
    "satisfies",
    "first_violation",
]


@dataclass(frozen=True)
class MKConstraint:
    """At most *m* misses in any window of *k* consecutive jobs."""

    m: int
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"window K must be >= 1, got {self.k}")
        if not 0 <= self.m <= self.k:
            raise ValueError(f"need 0 <= m <= K, got m={self.m}, K={self.k}")

    @property
    def hard(self) -> bool:
        """``m = 0``: the constraint degenerates to the hard deadline."""
        return self.m == 0

    @property
    def unconstrained(self) -> bool:
        """``m = K``: every pattern is acceptable."""
        return self.m == self.k

    # -- observed-pattern checking ------------------------------------------
    def satisfies(self, pattern: Sequence[bool] | Iterable[bool]) -> bool:
        """Exact check of a miss *pattern* (True = missed).

        O(n) running-sum sliding window; a pattern shorter than K is
        checked against its own (only) windows, so a prefix of a
        satisfying stream never violates what the full stream would not.
        """
        return first_violation(pattern, self) is None

    def skips(self, job: int) -> bool:
        """Deeply-red skip predicate: is release index *job* dropped?"""
        if job < 0:
            raise ValueError("job index must be >= 0")
        return job % self.k >= self.k - self.m

    # -- deeply-red pattern arithmetic (analysis side) ----------------------
    def max_executed(self, n: int) -> int:
        """``f(n)``: the most executed jobs among any *n* consecutive
        releases under the skip pattern (attained when the n releases
        start at a window boundary — executed jobs are front-loaded)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        e = self.k - self.m
        return (n // self.k) * e + min(n % self.k, e)

    def executed_release(self, q: int) -> int:
        """``g(q)``: release index of the (q+1)-th *executed* job.

        Inverse of the skip pattern: executed jobs occupy the first
        ``K - m`` slots of each window, so ``g`` is the strictly
        increasing enumeration of the non-skipped indices and
        ``max_executed(g(q) + 1) == q + 1``.  Undefined for ``m = K``
        (no job ever executes).
        """
        if q < 0:
            raise ValueError("job index must be >= 0")
        e = self.k - self.m
        if e == 0:
            raise ValueError("m = K: no executed jobs")
        return (q // e) * self.k + (q % e)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.m},{self.k})"


def first_violation(
    pattern: Sequence[bool] | Iterable[bool], mk: MKConstraint
) -> int | None:
    """Index (0-based, of the window's *last* sample) of the first
    window violating *mk*, or ``None`` when the pattern satisfies it."""
    checker = SlidingWindowChecker(mk)
    for i, missed in enumerate(pattern):
        if not checker.push(bool(missed)):
            return i
    return None


def satisfies(pattern: Sequence[bool] | Iterable[bool], mk: MKConstraint) -> bool:
    """Module-level alias of :meth:`MKConstraint.satisfies`."""
    return first_violation(pattern, mk) is None


class SlidingWindowChecker:
    """Streaming (m, K) checker: O(1) per sample, O(K) memory.

    Equivalent to the batch check on the concatenation of everything
    pushed so far (property-tested).  Once a violation occurred the
    checker stays violated — the constraint is over the whole stream.
    """

    def __init__(self, mk: MKConstraint):
        self.mk = mk
        self._window: list[bool] = []  # ring buffer of the last K samples
        self._head = 0
        self._misses = 0  # misses currently inside the window
        self._violated = False

    @property
    def violated(self) -> bool:
        return self._violated

    @property
    def misses_in_window(self) -> int:
        """Misses among the last ``min(pushed, K)`` samples."""
        return self._misses

    def push(self, missed: bool) -> bool:
        """Feed one sample (True = missed); returns ``not violated``."""
        if len(self._window) < self.mk.k:
            self._window.append(missed)
        else:
            if self._window[self._head]:
                self._misses -= 1
            self._window[self._head] = missed
            self._head = (self._head + 1) % self.mk.k
        if missed:
            self._misses += 1
        if self._misses > self.mk.m:
            self._violated = True
        return not self._violated
