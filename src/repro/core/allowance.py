"""Allowance (tolerance-factor) computation — paper §4.2 and §4.3.

A theoretically feasible system usually has *slack*: extra execution
time that tasks could consume without any deadline being missed.  The
paper turns this slack into an explicit **allowance** used to decide how
long a faulty (cost-overrunning) task may keep running before it is
stopped:

* the **equitable allowance** (§4.2) is the largest value ``A`` that can
  be added to *every* task's cost with the system staying feasible —
  found by binary search over the exact feasibility analysis.  With the
  allowance granted, detectors move to the *adjusted* worst-case
  response times of the inflated system (Table 3);
* the **system allowance** (§4.3) grants the whole free time of the
  system to the *first* faulty task: its grant is the largest value that
  can be added to *its* cost alone.  If it stops before exhausting the
  grant, the remainder benefits later faulty tasks — each subsequent
  grant is the task's own maximal overrun minus what higher-priority
  tasks already consumed (:class:`ResidualAllowanceManager`).

All searches are integer binary searches in nanoseconds, so results are
exact maxima: feasible at ``A``, infeasible at ``A + 1``.

Every search probes through an :class:`~repro.core.context.AnalysisContext`
(DESIGN.md §3.5): probes of one search form a cost-monotone family, so
each fixed point warm-starts the next and infeasible probes abort at the
first provable deadline miss.  Results are bit-identical to the cold
path (``tests/core/test_context_equivalence.py``); pass ``context=`` to
share the caches across several searches over the same task set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.context import AnalysisContext
from repro.core.feasibility import wc_response_time
from repro.core.task import Task, TaskSet

__all__ = [
    "max_such_that",
    "equitable_allowance",
    "adjusted_wcrt",
    "additive_adjusted_wcrt",
    "task_allowance",
    "system_allowance",
    "system_adjusted_wcrt",
    "EquitableAllowance",
    "compute_equitable",
    "ResidualAllowanceManager",
]


def max_such_that(predicate: Callable[[int], bool], hi: int) -> int:
    """Largest ``x`` in ``[0, hi]`` with ``predicate(x)`` true.

    *predicate* must be monotone (true up to some threshold, false
    beyond) and true at 0.  This is the binary search the paper uses to
    compute allowances; *hi* must be an upper bound at which the
    predicate may be false (it is checked last, not assumed).
    """
    if hi < 0:
        raise ValueError("hi must be >= 0")
    if not predicate(0):
        raise ValueError("predicate must hold at 0 (system must be feasible)")
    lo = 0  # invariant: predicate(lo) is true
    hi_open = None  # smallest known-false point, if any
    # Exponential probe keeps the common case (small allowance) cheap.
    step = 1
    while lo + step <= hi:
        if predicate(lo + step):
            lo += step
            step *= 2
        else:
            hi_open = lo + step
            break
    if hi_open is None:
        if lo == hi or predicate(hi):  # lo is already known true
            return hi
        hi_open = hi
    while lo + 1 < hi_open:
        mid = (lo + hi_open) // 2
        if predicate(mid):
            lo = mid
        else:
            hi_open = mid
    return lo


def _feasible_inflation_bound(taskset: TaskSet) -> int:
    """An inflation at or beyond which the set cannot gain feasibility.

    Once ``C_i + A > D_i`` for some task, its WCRT exceeds its deadline,
    so ``min_i (D_i - C_i)`` is a valid (tight) search ceiling: every
    value above it is infeasible, and the ceiling itself keeps all
    tasks constructible (``C_i + A <= D_i``).
    """
    return min(t.deadline - t.cost for t in taskset)


def _context_for(taskset: TaskSet, context: AnalysisContext | None) -> AnalysisContext:
    """*context* when it analyses *taskset*, else a fresh one."""
    if context is not None:
        if context.taskset != taskset:
            raise ValueError("context was built for a different task set")
        return context
    return AnalysisContext(taskset)


def equitable_allowance(
    taskset: TaskSet, *, context: AnalysisContext | None = None
) -> int:
    """The equitable allowance ``A`` of §4.2 (nanoseconds).

    Largest ``A`` such that the set with every cost inflated by ``A``
    remains feasible.  The input set must itself be feasible.
    """
    if len(taskset) == 0:
        raise ValueError("empty task set has no allowance")
    ctx = _context_for(taskset, context)
    if not ctx.is_feasible():
        raise ValueError("predicate must hold at 0 (system must be feasible)")
    hi = max(_feasible_inflation_bound(taskset), 0)
    return ctx.max_inflation(hi)


def adjusted_wcrt(
    taskset: TaskSet, allowance: int, *, context: AnalysisContext | None = None
) -> dict[str, int]:
    """Worst-case response times of the allowance-inflated system.

    These are the §4.2 stop thresholds (Table 3): a task granted the
    equitable allowance is stopped once it runs past the WCRT computed
    with *every* cost inflated by *allowance*.  Raises when the inflated
    system is infeasible (allowance too large).
    """
    ctx = _context_for(taskset, context)
    report = ctx.with_inflated_costs(allowance).analyze()
    if not report.feasible:
        raise ValueError(f"system infeasible with allowance {allowance}")
    return {name: r.wcrt for name, r in report.per_task.items()}  # type: ignore[misc]


def additive_adjusted_wcrt(taskset: TaskSet, allowance: int) -> dict[str, int]:
    """The paper's Table 3 closed form: ``WCRT_i + sum_{j: P_j >= P_i} A``.

    Exact when each task's busy window contains a single job of every
    higher-or-equal-priority task (true for the paper's Table 2 system);
    in general it can differ from the exact :func:`adjusted_wcrt`, which
    should be preferred.  Kept for fidelity and comparison tests.
    """
    out: dict[str, int] = {}
    for rank, task in enumerate(taskset):
        base = wc_response_time(task, taskset)
        if base is None:
            raise ValueError(f"{task.name} has unbounded WCRT")
        out[task.name] = base + allowance * (rank + 1)
    return out


def _solo_allowance(ctx: AnalysisContext, name: str) -> int:
    """Largest ``X`` keeping ``ctx`` feasible with the named task's cost
    raised by ``X`` — the one-task-overruns search of §4.3."""
    target = ctx.taskset[name]
    if not ctx.is_feasible():
        return 0
    hi = max(target.deadline - target.cost, 0)
    return ctx.max_task_cost_delta(name, hi)


def task_allowance(
    taskset: TaskSet,
    name: str,
    consumed: Mapping[str, int] | None = None,
    *,
    context: AnalysisContext | None = None,
) -> int:
    """Largest overrun the named task can make alone (§4.3), given the
    overruns *consumed* by other tasks so far (nanoseconds each).

    Searches for the largest ``X`` such that the system stays feasible
    with ``C_name + X`` and every other task's cost inflated by its
    consumed overrun.  A *context* (over the un-consumed *taskset*) is
    only consulted when *consumed* is empty — consumed overruns change
    the base costs and need their own analysis.
    """
    consumed = dict(consumed or {})
    consumed.pop(name, None)
    if not any(consumed.values()):
        taskset[name]  # noqa: B018 - preserve cold path's KeyError on unknown names
        return _solo_allowance(_context_for(taskset, context), name)
    base_costs = {t.name: t.cost + consumed.get(t.name, 0) for t in taskset}
    try:
        base = taskset.with_costs(base_costs)
    except ValueError:
        # A consumed overrun pushed some cost beyond its deadline and
        # period: the system is certainly infeasible, nothing is left.
        return 0
    return _solo_allowance(AnalysisContext(base), name)


def system_allowance(
    taskset: TaskSet, *, context: AnalysisContext | None = None
) -> dict[str, int]:
    """§4.3 grants: for each task, the maximal overrun it may make as
    the *first* faulty task (the "maximum free time available in the
    system" from that task's point of view)."""
    ctx = _context_for(taskset, context)
    return {t.name: _solo_allowance(ctx, t.name) for t in taskset}


def system_adjusted_wcrt(
    taskset: TaskSet,
    *,
    context: AnalysisContext | None = None,
    grants: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """§4.3 stop thresholds: the WCRT of each task when *any single*
    task (itself or a higher-or-equal-priority one) consumes its full
    solo allowance.

    These static thresholds implement the §4.3 policy exactly: a faulty
    task is stopped once it runs past ``WCRT_i + allowance``; a
    higher-priority task's consumed overrun appears as interference in
    lower tasks' completion times, so any residue left by an early stop
    is automatically available to the next faulty task ("if the first
    faulty task finishes before having consumed all its allowance, the
    remainder is allocated to the other faulty tasks") while non-faulty
    delayed tasks are never stopped.

    On the paper's Table 2 system every threshold is ``WCRT_i + 33 ms``.
    Pass precomputed *grants* (from :func:`system_allowance`) to skip
    recomputing them.
    """
    ctx = _context_for(taskset, context)
    if grants is None:
        grants = system_allowance(taskset, context=ctx)
    out: dict[str, int] = {}
    for task in taskset:
        candidates = [task, *taskset.higher_or_equal_priority(task)]
        worst = 0
        for donor in candidates:
            view = ctx.with_task_cost(
                donor.name, taskset[donor.name].cost + grants[donor.name]
            )
            r = view.wcrt(task.name)
            if r is None:
                raise ValueError(
                    f"inflating {donor.name} by its own allowance made "
                    f"{task.name} unbounded - inconsistent allowance"
                )
            worst = max(worst, r)
        out[task.name] = worst
    return out


@dataclass(frozen=True)
class EquitableAllowance:
    """Result bundle for the §4.2 policy.

    ``value`` is the per-task allowance ``A`` and ``stop_after`` maps
    each task to its adjusted WCRT — the delay after a job's release
    beyond which the treatment stops the job.
    """

    value: int
    stop_after: Mapping[str, int]


def compute_equitable(
    taskset: TaskSet, *, context: AnalysisContext | None = None
) -> EquitableAllowance:
    """Compute the §4.2 allowance and its adjusted stop thresholds."""
    ctx = _context_for(taskset, context)
    a = equitable_allowance(taskset, context=ctx)
    return EquitableAllowance(value=a, stop_after=adjusted_wcrt(taskset, a, context=ctx))


@dataclass
class ResidualAllowanceManager:
    """Book-keeping for the §4.3 policy across successive faults.

    The first faulty task receives its full solo allowance.  When a
    faulty task stops (or completes) having consumed only part of its
    grant, :meth:`record_overrun` is called with the overrun actually
    consumed; subsequent grants shrink accordingly ("if the first faulty
    task finishes before having consumed all its allowance, the
    remainder is allocated to the other faulty tasks").

    Grants are computed by re-running the exact analysis with consumed
    overruns folded into the costs, which generalises the paper's
    subtraction formula (and coincides with it on the paper's system —
    see the tests).
    """

    taskset: TaskSet
    consumed: dict[str, int] = field(default_factory=dict)
    _context: AnalysisContext | None = field(
        default=None, repr=False, compare=False
    )

    def _ctx(self) -> AnalysisContext:
        # Shared across grants so the no-consumed searches (the common
        # case: first fault, or after reset) reuse warm fixed points.
        if self._context is None:
            self._context = AnalysisContext(self.taskset)
        return self._context

    def grant(self, name: str) -> int:
        """Allowance currently available to the named task."""
        return task_allowance(self.taskset, name, self.consumed, context=self._ctx())

    def record_overrun(self, name: str, amount: int) -> None:
        """Record that *name* actually overran its cost by *amount*."""
        if amount < 0:
            raise ValueError("overrun amount must be >= 0")
        self.consumed[name] = self.consumed.get(name, 0) + amount

    def reset(self) -> None:
        """Forget consumed overruns (e.g. at an idle instant, when the
        backlog has drained and past overruns no longer interfere)."""
        self.consumed.clear()

    def paper_subtraction_grant(self, name: str) -> int:
        """The paper's closed form: solo allowance minus the overruns
        consumed by higher-or-equal-priority tasks (floored at 0)."""
        solo = task_allowance(self.taskset, name, context=self._ctx())
        me = self.taskset[name]
        higher = sum(
            amt
            for other, amt in self.consumed.items()
            if other != name and self.taskset[other].priority >= me.priority
        )
        return max(solo - higher, 0)
