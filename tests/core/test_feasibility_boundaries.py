"""Boundary pins for :mod:`repro.core.feasibility`.

The oracle suite (``tests/oracle``) sweeps random systems; this module
pins the *exact* values at the edges where off-by-one regressions like
to hide: ``D == T`` vs ``D > T``, single-task sets, zero slack
(``R == D`` exactly), and busy-period termination at utilisation
exactly 1.
"""

from __future__ import annotations

import pytest

from repro.core.feasibility import (
    analyze,
    is_feasible,
    level_busy_period,
    response_time_constrained,
    wc_response_time,
)
from repro.core.task import Task, TaskSet


def _two_tasks(lo_deadline: int) -> TaskSet:
    hi = Task("hi", cost=3, period=10, priority=10)
    lo = Task("lo", cost=4, period=20, deadline=lo_deadline, priority=5)
    return TaskSet([hi, lo])


class TestConstrainedVsGeneral:
    def test_agree_at_deadline_equals_period(self):
        # D == T: the constrained first-job RTA is exact and must match
        # the general (Lehoczky) analysis to the nanosecond.
        ts = _two_tasks(lo_deadline=20)
        lo = ts["lo"]
        assert response_time_constrained(lo, ts) == 7
        assert wc_response_time(lo, ts) == 7

    def test_constrained_undershoots_past_period(self, lehoczky):
        # D > T: the first job is *not* the worst — the constrained
        # formula stops at 114 while the busy-period analysis finds the
        # true 118 at a later job.  Pinning both keeps the gap visible.
        t2 = lehoczky["t2"]
        assert t2.deadline > t2.period
        assert response_time_constrained(t2, lehoczky) == 114
        assert wc_response_time(t2, lehoczky) == 118


class TestSingleTaskSets:
    def test_wcrt_is_cost(self):
        t = Task("solo", cost=5, period=9, priority=1)
        ts = TaskSet([t])
        assert wc_response_time(t, ts) == 5
        assert response_time_constrained(t, ts) == 5
        assert level_busy_period(t, ts) == 5

    def test_full_utilization_single_task(self):
        # C == T == D: utilisation exactly 1, zero slack, still feasible.
        t = Task("solo", cost=7, period=7, priority=1)
        ts = TaskSet([t])
        assert wc_response_time(t, ts) == 7
        assert level_busy_period(t, ts) == 7
        assert is_feasible(ts)

    def test_cost_over_deadline_is_infeasible(self):
        t = Task("solo", cost=8, period=10, deadline=7, priority=1)
        report = analyze(TaskSet([t]))
        assert report.per_task["solo"].wcrt == 8
        assert not report.feasible


class TestZeroSlack:
    def test_response_equals_deadline_exactly(self):
        # R == D is the knife edge: feasible with slack exactly 0.
        ts = _two_tasks(lo_deadline=7)
        report = analyze(ts)
        assert report.wcrt("lo") == 7
        assert report.per_task["lo"].slack == 0
        assert report.feasible

    def test_one_nanosecond_less_misses(self):
        ts = _two_tasks(lo_deadline=6)
        report = analyze(ts)
        assert report.wcrt("lo") == 7
        assert report.per_task["lo"].slack == -1
        assert not report.feasible


class TestBusyPeriodAtFullUtilization:
    def test_terminates_at_hyperperiod(self):
        # U == 1 exactly: the least fixed point is the hyperperiod
        # (lcm(6, 10) = 30) and the bounded iteration must reach it.
        a = Task("a", cost=3, period=6, priority=10)
        b = Task("b", cost=5, period=10, priority=5)
        ts = TaskSet([a, b])
        assert ts.utilization_exact() == (1, 1)
        assert level_busy_period(b, ts) == 30
        # The WCRT stays bounded too; D == T == 10 makes b feasible.
        assert wc_response_time(b, ts) == 12
        assert not analyze(ts).feasible  # 12 > D_b = 10

    def test_unbounded_just_past_one(self):
        a = Task("a", cost=3, period=6, priority=10)
        b = Task("b", cost=6, period=10, priority=5)  # U = 1/2 + 3/5
        ts = TaskSet([a, b])
        assert level_busy_period(b, ts) is None
        assert wc_response_time(b, ts) is None

    @pytest.mark.parametrize("cost,expected", [(6, 60), (7, None)])
    def test_exact_arithmetic_at_the_edge(self, cost, expected):
        # 3/6 + 4/10 + 6/60 == 1 exactly: the busy period closes at the
        # hyperperiod; one more nanosecond of cost (61/60) and the
        # analysis must give up, not spin.
        a = Task("a", cost=3, period=6, priority=10)
        b = Task("b", cost=4, period=10, priority=5)
        c = Task("c", cost=cost, period=60, priority=1)
        ts = TaskSet([a, b, c])
        assert level_busy_period(c, ts) == expected
