"""Unit tests for RealtimeThread and RealtimeSystem."""

import pytest

from repro.rtsj.params import PeriodicParameters, PriorityParameters
from repro.rtsj.system import RealtimeSystem
from repro.rtsj.thread import RealtimeThread
from repro.units import ms


def thread(system, name="t", priority=10, cost=2, period=10, deadline=None, start=0):
    return RealtimeThread(
        PriorityParameters(priority),
        PeriodicParameters(start, ms(period), ms(cost), ms(deadline) if deadline else None),
        system,
        name=name,
    )


class TestConstruction:
    def test_cost_required(self):
        system = RealtimeSystem()
        with pytest.raises(ValueError, match="cost"):
            RealtimeThread(
                PriorityParameters(1), PeriodicParameters(0, ms(10)), system
            )

    def test_auto_names_unique(self):
        system = RealtimeSystem()
        a = RealtimeThread(
            PriorityParameters(1), PeriodicParameters(0, ms(10), ms(1)), system
        )
        b = RealtimeThread(
            PriorityParameters(2), PeriodicParameters(0, ms(10), ms(1)), system
        )
        assert a.name != b.name

    def test_duplicate_names_rejected(self):
        system = RealtimeSystem()
        thread(system, "same")
        with pytest.raises(ValueError, match="duplicate"):
            thread(system, "same")

    def test_as_task(self):
        system = RealtimeSystem()
        t = thread(system, "x", priority=7, cost=3, period=20, deadline=15, start=ms(5))
        task = t.as_task()
        assert task.name == "x"
        assert task.priority == 7
        assert task.cost == ms(3)
        assert task.period == ms(20)
        assert task.deadline == ms(15)
        assert task.offset == ms(5)


class TestLifecycle:
    def test_double_start_rejected(self):
        system = RealtimeSystem()
        t = thread(system)
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_run_requires_started_threads(self):
        system = RealtimeSystem()
        thread(system)  # not started
        with pytest.raises(RuntimeError, match="no started"):
            system.run(ms(100))

    def test_unstarted_threads_excluded(self):
        system = RealtimeSystem()
        a = thread(system, "a")
        thread(system, "b", priority=5)
        a.start()
        res = system.run(ms(50))
        assert {t.name for t in res.taskset} == {"a"}

    def test_system_runs_once(self):
        system = RealtimeSystem()
        thread(system).start()
        system.run(ms(50))
        with pytest.raises(RuntimeError, match="already ran"):
            system.run(ms(50))

    def test_wait_for_next_period_returns_true(self):
        system = RealtimeSystem()
        assert thread(system).waitForNextPeriod()


class TestExecution:
    def test_threads_scheduled_by_priority(self):
        system = RealtimeSystem()
        hi = thread(system, "hi", priority=10, cost=2, period=10)
        lo = thread(system, "lo", priority=5, cost=3, period=15)
        hi.start()
        lo.start()
        res = system.run(ms(30))
        assert res.job("hi", 0).finished_at == ms(2)
        assert res.job("lo", 0).finished_at == ms(5)

    def test_injected_overrun_reaches_simulation(self):
        system = RealtimeSystem()
        t = thread(system, "t", cost=2, period=10)
        t.inject_cost_overrun(1, ms(4))
        t.start()
        res = system.run(ms(30))
        assert res.job("t", 0).demand == ms(2)
        assert res.job("t", 1).demand == ms(6)

    def test_inject_zero_is_noop(self):
        system = RealtimeSystem()
        t = thread(system)
        t.inject_cost_overrun(0, 0)
        assert t.injected_overruns == {}

    def test_taskset_view(self):
        system = RealtimeSystem()
        thread(system, "a", priority=3).start()
        thread(system, "b", priority=9).start()
        ts = system.taskset()
        assert [x.name for x in ts] == ["b", "a"]
