#!/usr/bin/env python3
"""A control pipeline: precedence chains + an aperiodic server.

The most demanding composition of the library's §7 extensions:

* a sense -> compute -> act transaction (precedence constraints) whose
  stages release on actual completions, checked against the holistic
  end-to-end bound;
* operator commands arriving aperiodically, drained by a polling
  server sized by binary search to the largest budget the periodic
  set tolerates;
* a fault in the compute stage, detected and stopped so the pipeline's
  next transaction starts clean.

Run:  python examples/control_pipeline.py
"""

from repro import Task, TaskSet, TreatmentKind, ms, to_ms
from repro.core.faults import CostOverrun, FaultInjector
from repro.core.precedence import PrecedenceGraph, end_to_end_bound
from repro.core.servers import polling_response_bound, server_sizing
from repro.core.treatments import plan_treatment
from repro.sim.chains import end_to_end_latencies, simulate_chains
from repro.sim.servers import AperiodicRequest, simulate_with_server

# -- Part 1: the transaction -------------------------------------------------
tasks = TaskSet(
    [
        Task("watchdog", cost=ms(1), period=ms(10), priority=30),
        Task("sense", cost=ms(3), period=ms(50), priority=20),
        Task("compute", cost=ms(8), period=ms(50), priority=18),
        Task("act", cost=ms(2), period=ms(50), priority=16),
    ]
)
pipeline = PrecedenceGraph(tasks, [("sense", "compute"), ("compute", "act")])
chain = ["sense", "compute", "act"]

bound = end_to_end_bound(pipeline, chain)
print(f"holistic end-to-end bound (sense->act): {to_ms(bound):g} ms")

result = simulate_chains(pipeline, horizon=ms(500))
latencies = end_to_end_latencies(result, pipeline, chain)
worst = max(latencies.values())
print(f"observed worst latency over {len(latencies)} transactions: {to_ms(worst):g} ms")
assert worst <= bound

# -- Part 2: a faulty compute stage is contained -----------------------------
plan = plan_treatment(tasks, TreatmentKind.IMMEDIATE_STOP)
faults = FaultInjector([CostOverrun("compute", 2, ms(60))])
faulty = simulate_chains(pipeline, horizon=ms(500), faults=faults, plan=plan)
(stopped,) = faulty.stopped("compute")
print(
    f"\ncompute's 3rd job overran and was stopped at {to_ms(stopped.finished_at):g} ms; "
    f"misses: {[(j.name, j.index) for j in faulty.missed()] or 'none'}"
)
assert faulty.missed() == []

# -- Part 3: operator commands through a sized polling server ----------------
server = server_sizing(tasks, period=ms(25), priority=10, name="cmd-server")
assert server is not None
print(
    f"\nsized polling server: {to_ms(server.capacity):g} ms budget "
    f"every {to_ms(server.period):g} ms at priority {server.priority}"
)

commands = [
    AperiodicRequest("cmd-a", arrival=ms(12), demand=ms(2)),
    AperiodicRequest("cmd-b", arrival=ms(13), demand=ms(4)),
    AperiodicRequest("cmd-c", arrival=ms(180), demand=ms(1)),
]
server_run, served = simulate_with_server(tasks, server, commands, horizon=ms(500))
assert server_run.missed() == []
for cmd in served:
    cap = polling_response_bound(cmd.demand, server, tasks)
    print(
        f"  {cmd.name}: response {to_ms(cmd.response_time):g} ms "
        f"(bound {to_ms(cap):g} ms)"
    )
    assert cmd.response_time <= cap
print("\npipeline safe: chain bound holds, fault contained, commands bounded")
