"""Unit tests for trace recording and queries."""

from repro.sim.trace import EventKind, Trace


def build_trace() -> Trace:
    tr = Trace()
    tr.record(0, EventKind.RELEASE, "a", 0)
    tr.record(0, EventKind.START, "a", 0)
    tr.record(5, EventKind.PREEMPT, "a", 0)
    tr.record(5, EventKind.RELEASE, "b", 0)
    tr.record(5, EventKind.START, "b", 0)
    tr.record(8, EventKind.COMPLETE, "b", 0)
    tr.record(8, EventKind.RESUME, "a", 0)
    tr.record(12, EventKind.COMPLETE, "a", 0)
    tr.record(20, EventKind.DEADLINE_MISS, "a", 1)
    return tr


class TestQueries:
    def test_len_and_iteration(self):
        tr = build_trace()
        assert len(tr) == 9
        assert len(list(tr)) == 9

    def test_of_kind(self):
        tr = build_trace()
        releases = tr.of_kind(EventKind.RELEASE)
        assert [(e.task, e.time) for e in releases] == [("a", 0), ("b", 5)]

    def test_of_multiple_kinds(self):
        tr = build_trace()
        got = tr.of_kind(EventKind.START, EventKind.COMPLETE)
        assert len(got) == 4

    def test_for_task(self):
        tr = build_trace()
        assert all(e.task == "b" for e in tr.for_task("b"))
        assert len(tr.for_task("b")) == 3

    def test_filter(self):
        tr = build_trace()
        late = tr.filter(lambda e: e.time >= 8)
        assert len(late) == 4

    def test_deadline_misses(self):
        tr = build_trace()
        assert len(tr.deadline_misses()) == 1
        assert len(tr.deadline_misses("a")) == 1
        assert tr.deadline_misses("b") == []

    def test_end_time(self):
        assert build_trace().end_time() == 20
        assert Trace().end_time() == 0


class TestExecutionIntervals:
    def test_reconstruction_with_preemption(self):
        tr = build_trace()
        assert tr.execution_intervals("a") == [(0, 5, 0), (8, 12, 0)]
        assert tr.execution_intervals("b") == [(5, 8, 0)]

    def test_open_interval_dropped(self):
        tr = Trace()
        tr.record(0, EventKind.START, "a", 0)
        # never completes
        assert tr.execution_intervals("a") == []

    def test_zero_width_interval_dropped(self):
        tr = Trace()
        tr.record(3, EventKind.START, "a", 0)
        tr.record(3, EventKind.STOP, "a", 0)
        assert tr.execution_intervals("a") == []

    def test_stop_closes_interval(self):
        tr = Trace()
        tr.record(0, EventKind.START, "a", 0)
        tr.record(4, EventKind.STOP, "a", 0)
        assert tr.execution_intervals("a") == [(0, 4, 0)]


class TestDump:
    def test_dump_lines(self):
        tr = build_trace()
        dump = tr.dump()
        assert len(dump.splitlines()) == len(tr)
        assert "release a#0" in dump
