"""Chart and report rendering (the paper's measurement tool #2)."""

from repro.viz.svg import SvgOptions, render_svg
from repro.viz.tables import format_table
from repro.viz.timeline import TimelineOptions, render_timeline

__all__ = [
    "render_timeline",
    "TimelineOptions",
    "render_svg",
    "SvgOptions",
    "format_table",
]
