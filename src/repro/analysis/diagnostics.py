"""Structured diagnostics shared by the linter and the task-set validator.

Every finding — whether it comes from an AST rule (``RT0xx``) or from
the semantic task-system validator (``TS0xx``) — is a
:class:`Diagnostic`: a stable code, a severity, a precise location and
a human-readable message plus a fix hint.  Keeping one record type
means one text formatter, one JSON formatter and one exit-code policy
for the whole ``python -m repro.analysis`` front end.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable

__all__ = [
    "Severity",
    "Diagnostic",
    "render_text",
    "render_json",
    "worst_severity",
]


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings fail the build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pin-pointed to ``path:line:column``.

    Parameters
    ----------
    code:
        Stable identifier (``RT001`` … for lint rules, ``TS001`` … for
        task-system checks).  Codes never change meaning once shipped;
        retired codes are not reused.
    severity:
        :class:`Severity`; only errors affect the CLI exit status *and*
        the self-lint test, warnings are advisory.
    message:
        One-line description of the specific finding.
    path:
        File the finding is in (as given to the checker).
    line:
        1-based line number (0 when the finding is file-level).
    column:
        1-based column (0 when unknown).
    hint:
        Short "do this instead" guidance; may be empty.
    """

    code: str
    severity: Severity
    message: str
    path: str
    line: int = 0
    column: int = 0
    hint: str = ""

    @property
    def location(self) -> str:
        """``path:line:column`` with zero parts omitted."""
        out = self.path
        if self.line:
            out += f":{self.line}"
            if self.column:
                out += f":{self.column}"
        return out

    def to_dict(self) -> dict:
        """JSON-ready mapping (severity flattened to its string value)."""
        data = asdict(self)
        data["severity"] = self.severity.value
        return data

    def __str__(self) -> str:
        text = f"{self.location}: {self.severity.value}[{self.code}]: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def sort_key(diag: Diagnostic) -> tuple:
    """Deterministic report order: by file, then position, then code."""
    return (diag.path, diag.line, diag.column, diag.code)


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """One finding per line, sorted, with a trailing summary line."""
    diags = sorted(diagnostics, key=sort_key)
    lines = [str(d) for d in diags]
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    warnings = len(diags) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine-readable report: a stable top-level object so CI tooling
    can consume it without version sniffing."""
    diags = sorted(diagnostics, key=sort_key)
    payload = {
        "version": 1,
        "diagnostics": [d.to_dict() for d in diags],
        "summary": {
            "errors": sum(1 for d in diags if d.severity is Severity.ERROR),
            "warnings": sum(1 for d in diags if d.severity is Severity.WARNING),
        },
    }
    return json.dumps(payload, indent=2)


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The most severe finding present, or ``None`` for a clean run."""
    worst: Severity | None = None
    for d in diagnostics:
        if d.severity is Severity.ERROR:
            return Severity.ERROR
        worst = Severity.WARNING
    return worst
