"""Unit tests for cost under-run detection and reclamation (§7)."""

import pytest

from repro.core.faults import CostUnderrun, FaultInjector
from repro.core.task import Task, TaskSet
from repro.core.underrun import (
    observed_costs,
    reclaim_allowance,
    tighten_costs,
)
from repro.sim.simulation import simulate
from repro.units import ms


def overestimated_set() -> TaskSet:
    # Declared costs are twice what the tasks actually use.
    return TaskSet(
        [
            Task("a", cost=ms(20), period=ms(100), deadline=ms(60), priority=2),
            Task("b", cost=ms(20), period=ms(200), deadline=ms(100), priority=1),
        ]
    )


def underrun_faults() -> FaultInjector:
    devs = []
    for name in ("a", "b"):
        for job in range(10):
            devs.append(CostUnderrun(name, job, ms(10)))
    return FaultInjector(devs)


class TestObservedCosts:
    def test_reflects_actual_execution(self):
        ts = overestimated_set()
        res = simulate(ts, horizon=ms(600), faults=underrun_faults())
        obs = observed_costs(res)
        assert obs == {"a": ms(10), "b": ms(10)}

    def test_exact_when_no_underruns(self):
        ts = overestimated_set()
        res = simulate(ts, horizon=ms(600))
        assert observed_costs(res) == {"a": ms(20), "b": ms(20)}

    def test_stopped_jobs_excluded(self):
        from repro.core.faults import CostOverrun
        from repro.core.treatments import TreatmentKind

        ts = overestimated_set()
        faults = FaultInjector([CostOverrun("a", 0, ms(50))])
        res = simulate(
            ts, horizon=ms(600), faults=faults, treatment=TreatmentKind.IMMEDIATE_STOP
        )
        # Job 0 of 'a' was stopped; remaining jobs observed normally.
        assert observed_costs(res)["a"] == ms(20)


class TestTightening:
    def test_margin_applied(self):
        ts = overestimated_set()
        tightened = tighten_costs(ts, {"a": ms(10)}, margin_percent=10)
        assert tightened["a"].cost == ms(11)
        assert tightened["b"].cost == ms(20)  # unobserved: unchanged

    def test_never_exceeds_declared(self):
        ts = overestimated_set()
        tightened = tighten_costs(ts, {"a": ms(30)}, margin_percent=50)
        assert tightened["a"].cost == ms(20)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            tighten_costs(overestimated_set(), {}, margin_percent=-1)


class TestReclaim:
    def test_underruns_grow_allowance(self):
        ts = overestimated_set()
        res = simulate(ts, horizon=ms(600), faults=underrun_faults())
        report = reclaim_allowance(ts, res)
        assert report.reclaimed > 0
        assert report.new_allowance > report.old_allowance
        assert report.savings() == {
            "a": ms(20) - ms(11),
            "b": ms(20) - ms(11),
        }

    def test_accurate_costs_reclaim_little(self):
        ts = overestimated_set()
        res = simulate(ts, horizon=ms(600))
        report = reclaim_allowance(ts, res, margin_percent=0)
        assert report.reclaimed == 0

    def test_tightened_system_still_feasible(self):
        from repro.core.feasibility import is_feasible

        ts = overestimated_set()
        res = simulate(ts, horizon=ms(600), faults=underrun_faults())
        report = reclaim_allowance(ts, res)
        assert is_feasible(report.tightened)

    def test_infeasible_input_rejected(self):
        bad = TaskSet(
            [
                Task("x", cost=8, period=10, priority=2),
                Task("y", cost=8, period=10, priority=1),
            ]
        )
        res = simulate(overestimated_set(), horizon=ms(100))
        with pytest.raises(ValueError):
            reclaim_allowance(bad, res)
