"""Table 2: the tested system's WCRTs and equitable allowance.

Paper values reproduced exactly: WCRT = (29, 58, 87) ms, A_i = 11 ms.
The benchmark times the admission-control work the paper performs in
its overloaded ``addToFeasibility()`` (Figure 2 per task) and the §4.2
binary search.
"""

from repro.core.allowance import equitable_allowance
from repro.core.feasibility import analyze
from repro.experiments.paper import table2 as table2_experiment
from repro.units import ms


def test_table2_wcrt_analysis(benchmark, table2):
    report = benchmark(analyze, table2)
    assert report.feasible
    assert report.wcrt("tau1") == ms(29)
    assert report.wcrt("tau2") == ms(58)
    assert report.wcrt("tau3") == ms(87)


def test_table2_allowance_binary_search(benchmark, table2):
    allowance = benchmark(equitable_allowance, table2)
    assert allowance == ms(11)


def test_table2_full_experiment(benchmark):
    result = benchmark(table2_experiment)
    assert all(c.holds for c in result.claims())
    assert result.wcrt == {"tau1": ms(29), "tau2": ms(58), "tau3": ms(87)}
    assert result.allowance == ms(11)
