"""Unit tests for the text table formatter."""

import pytest

from repro.viz.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [("tau1", 29), ("longer-name", 5)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # Numeric column right-aligned: the "5" sits under the "29"'s
        # last digit.
        assert lines[2].rstrip().endswith("29")
        assert lines[3].rstrip().endswith("5")

    def test_title(self):
        out = format_table(["a"], [(1,)], title="Table X")
        assert out.splitlines()[0] == "Table X"

    def test_floats_formatted(self):
        out = format_table(["v"], [(29.0,), (1.5,)])
        assert "29" in out and "1.5" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2

    def test_text_left_aligned(self):
        out = format_table(["task", "x"], [("t1", 1), ("verylongname", 2)])
        body = out.splitlines()[2]
        assert body.startswith("t1 ")
