"""Unit + property tests for time-demand analysis (TDA)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.feasibility import is_feasible, response_time_constrained
from repro.core.task import Task, TaskSet
from repro.core.timedemand import (
    demand_curve,
    scheduling_points,
    tda_feasible,
    tda_schedulable,
    time_demand,
)


class TestSchedulingPoints:
    def test_points_for_paper_system(self, table2):
        # tau3 (D=120): multiples of 200/250 above 120 don't qualify,
        # so only its own deadline remains... wait: tau1's period is
        # 200 > 120 and tau2's 250 > 120, so P = {120}.
        assert scheduling_points(table2["tau3"], table2) == [table2["tau3"].deadline]

    def test_points_include_hp_period_multiples(self):
        ts = TaskSet(
            [
                Task("hi", cost=1, period=4, priority=2),
                Task("lo", cost=5, period=16, deadline=14, priority=1),
            ]
        )
        assert scheduling_points(ts["lo"], ts) == [4, 8, 12, 14]

    def test_requires_constrained(self):
        ts = TaskSet([Task("t", cost=1, period=10, deadline=20, priority=1)])
        with pytest.raises(ValueError):
            scheduling_points(ts["t"], ts)


class TestTimeDemand:
    def test_demand_accumulates(self):
        ts = TaskSet(
            [
                Task("hi", cost=1, period=4, priority=2),
                Task("lo", cost=5, period=16, priority=1),
            ]
        )
        lo = ts["lo"]
        assert time_demand(lo, ts, 1) == 6  # 5 + 1 activation of hi
        assert time_demand(lo, ts, 4) == 6
        assert time_demand(lo, ts, 5) == 7  # second hi activation
        assert time_demand(lo, ts, 16) == 9

    def test_t_positive(self, table2):
        with pytest.raises(ValueError):
            time_demand(table2["tau1"], table2, 0)

    def test_curve_shape(self, table2):
        curve = demand_curve(table2["tau2"], table2)
        assert curve[-1][0] == table2["tau2"].deadline
        # Demand is non-decreasing along the points.
        values = [w for _, w in curve]
        assert values == sorted(values)


class TestAgreementWithRta:
    def test_paper_system(self, table2):
        assert tda_feasible(table2)

    def test_infeasible_case(self):
        ts = TaskSet(
            [
                Task("hi", cost=5, period=10, priority=2),
                Task("lo", cost=5, period=20, deadline=9, priority=1),
            ]
        )
        assert not tda_schedulable(ts["lo"], ts)
        assert tda_schedulable(ts["hi"], ts)

    @given(
        st.lists(
            st.tuples(st.integers(2, 25), st.integers(1, 10)),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=80)
    def test_tda_equals_rta_on_random_systems(self, raw):
        tasks = []
        for i, (period, cost) in enumerate(raw):
            cost = min(cost, period)
            deadline = min(period, max(cost, period - i))
            tasks.append(
                Task(
                    name=f"t{i}",
                    cost=cost,
                    period=period,
                    deadline=deadline,
                    priority=len(raw) - i,
                )
            )
        ts = TaskSet(tasks)
        for t in ts:
            r = response_time_constrained(t, ts)
            rta_ok = r is not None and r <= t.deadline
            assert tda_schedulable(t, ts) == rta_ok
        assert tda_feasible(ts) == all(
            (response_time_constrained(t, ts) or 10**18) <= t.deadline for t in ts
        )

    def test_tda_feasible_matches_exact_on_constrained(self, two_tasks):
        assert tda_feasible(two_tasks) == is_feasible(two_tasks)
