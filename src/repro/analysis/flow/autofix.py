"""Mechanical autofixes for a small, safe subset of findings.

``--fix`` applies only rewrites whose before/after behaviour is
provably equivalent (or strictly more reproducible) and purely local:

* ``random.Random(hash(x))`` → ``derive_rng(x)`` — byte-for-byte the
  stream the caller *meant*: :func:`repro.rng.derive_rng` is
  ``Random(stable_hash(seed, *parts))``, replacing the salted built-in
  ``hash`` with the process-stable CRC.  The import is inserted when
  missing.
* stale ``# noqa`` comments flagged by RT099 — unused codes are
  dropped from the comment; a comment left with no live codes (or a
  blanket ``# noqa`` that suppressed nothing) is removed entirely.

Every text-span rewrite re-parses the result before it is accepted; a
fix that would produce a syntax error is discarded, never written.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.lint import from_imports, lint_source, module_aliases

__all__ = ["Fix", "fix_source", "fix_file"]


@dataclass(frozen=True)
class Fix:
    """One applied rewrite, for reporting."""

    line: int
    description: str


# ---------------------------------------------------------------------------
# random.Random(hash(x)) → derive_rng(x)
# ---------------------------------------------------------------------------


def _random_ctor_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``random``, local names bound to ``Random``)."""
    aliases = module_aliases(tree, "random")
    ctors = {
        local
        for local, orig in from_imports(tree, "random").items()
        if orig == "Random"
    }
    return aliases, ctors


def _is_hash_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "hash"
        and len(node.args) == 1
        and not node.keywords
    )


def _find_hash_seeded_randoms(tree: ast.Module) -> list[ast.Call]:
    aliases, ctors = _random_ctor_names(tree)
    out: list[ast.Call] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and len(node.args) == 1 and not node.keywords):
            continue
        fn = node.func
        is_ctor = (isinstance(fn, ast.Name) and fn.id in ctors) or (
            isinstance(fn, ast.Attribute)
            and fn.attr == "Random"
            and isinstance(fn.value, ast.Name)
            and fn.value.id in aliases
        )
        if is_ctor and _is_hash_call(node.args[0]):
            out.append(node)
    return out


def _replace_span(lines: list[str], node: ast.Call, text: str) -> bool:
    """Splice *text* over *node*'s source span (in-place); multi-line
    spans are handled by collapsing onto the start line."""
    if node.end_lineno is None or node.end_col_offset is None:
        return False
    start, end = node.lineno - 1, node.end_lineno - 1
    head = lines[start][: node.col_offset]
    tail = lines[end][node.end_col_offset :]
    lines[start : end + 1] = [head + text + tail]
    return True


def _ensure_derive_rng_import(lines: list[str], tree: ast.Module) -> bool:
    """Insert ``from repro.rng import derive_rng`` if not already bound;
    returns True when a line was inserted."""
    if "derive_rng" in from_imports(tree, "repro.rng"):
        return False
    anchor = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            anchor = (node.end_lineno or node.lineno)
        elif anchor == 0 and isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ):
            anchor = (node.end_lineno or node.lineno)  # module docstring
    lines.insert(anchor, "from repro.rng import derive_rng")
    return True


def _fix_hash_seeded_randoms(source: str) -> tuple[str, list[Fix]]:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, []
    targets = _find_hash_seeded_randoms(tree)
    if not targets:
        return source, []
    lines = source.splitlines()
    fixes: list[Fix] = []
    # Bottom-up so earlier spans stay valid.
    for node in sorted(targets, key=lambda n: (n.lineno, n.col_offset), reverse=True):
        inner = node.args[0]
        assert isinstance(inner, ast.Call)
        replacement = f"derive_rng({ast.unparse(inner.args[0])})"
        if _replace_span(lines, node, replacement):
            fixes.append(
                Fix(node.lineno, f"random.Random(hash(...)) -> {replacement}")
            )
    if not fixes:
        return source, []
    inserted = _ensure_derive_rng_import(lines, tree)
    if inserted:
        fixes.append(Fix(0, "insert 'from repro.rng import derive_rng'"))
    fixed = "\n".join(lines) + ("\n" if source.endswith("\n") else "")
    try:
        ast.parse(fixed)
    except SyntaxError:  # never ship a rewrite that broke the file
        return source, []
    return fixed, fixes


# ---------------------------------------------------------------------------
# Stale-noqa stripping (driven by RT099)
# ---------------------------------------------------------------------------

_NOQA_COMMENT_RE = re.compile(r"\s*#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.I)

_STALE_RE = re.compile(r"(?:suppressed no finding|unused suppression)")
_CODE_RE = re.compile(r"\bRT\d{3}\b")


def _rewrite_noqa(line: str, drop: set[str]) -> str | None:
    """Drop *drop* codes from the line's noqa comment; None = no change."""
    m = _NOQA_COMMENT_RE.search(line)
    if m is None:
        return None
    codes_text = m.group("codes")
    if codes_text is None:
        # Blanket noqa that suppressed nothing: remove the comment.
        return line[: m.start()].rstrip() or None
    codes = [c.strip().upper() for c in codes_text.split(",") if c.strip()]
    keep = [c for c in codes if c not in drop]
    if keep == codes:
        return None
    if not keep:
        kept_line = line[: m.start()] + line[m.end() :]
        return kept_line.rstrip()
    prefix = line[: m.start()]
    suffix = line[m.end() :]
    return f"{prefix}  # noqa: {', '.join(keep)}{suffix}".rstrip()


def _fix_stale_noqa(source: str, path: str) -> tuple[str, list[Fix]]:
    stale = [
        d
        for d in lint_source(source, path)
        if d.code == "RT099" and _STALE_RE.search(d.message)
    ]
    if not stale:
        return source, []
    lines = source.splitlines()
    fixes: list[Fix] = []
    for d in stale:
        idx = d.line - 1
        if not 0 <= idx < len(lines):
            continue
        drop = set(_CODE_RE.findall(d.message))
        new = _rewrite_noqa(lines[idx], drop)
        if new is None and "suppressed no finding" in d.message:
            new = _NOQA_COMMENT_RE.sub("", lines[idx]).rstrip()
        if new is not None and new != lines[idx]:
            lines[idx] = new
            what = ", ".join(sorted(drop)) if drop else "blanket noqa"
            fixes.append(Fix(d.line, f"drop stale suppression ({what})"))
    if not fixes:
        return source, []
    fixed = "\n".join(lines) + ("\n" if source.endswith("\n") else "")
    return fixed, fixes


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def fix_source(source: str, path: str = "<string>") -> tuple[str, list[Fix]]:
    """All applicable autofixes for *source*; returns (new text, fixes)."""
    fixed, fixes = _fix_hash_seeded_randoms(source)
    fixed, more = _fix_stale_noqa(fixed, path)
    return fixed, fixes + more


def fix_file(path: str | Path) -> list[Fix]:
    """Apply :func:`fix_source` to *path* in place; returns the fixes."""
    p = Path(path)
    source = p.read_text(encoding="utf-8")
    fixed, fixes = fix_source(source, str(p))
    if fixes and fixed != source:
        p.write_text(fixed, encoding="utf-8")
    return fixes
