"""Scenario file parser — the paper's measurement tool #1 (§5).

"The first one enables us to parse a file which describes the tasks in
the system.  It builds and runs the tasks automatically."

The format is line-oriented text::

    # The paper's tested system (Table 2), figures phasing.
    @unit ms
    @horizon 1600
    @treatment system-allowance
    task tau1 priority=20 cost=29 period=200  deadline=70
    task tau2 priority=18 cost=29 period=250  deadline=120
    task tau3 priority=16 cost=29 period=1500 deadline=120 offset=1000
    fault tau1 job=5 extra=40

* ``@unit`` — ``ns``/``us``/``ms``/``s``; applies to all durations
  (default ``ms``, matching the paper's tables);
* ``@horizon`` — simulation length;
* ``@treatment`` — any :class:`~repro.core.treatments.TreatmentKind`
  value (e.g. ``no-detection``, ``immediate-stop``);
* ``task`` — one task; ``deadline`` defaults to the period and
  ``offset`` to 0.  Fields may also be given positionally in the order
  ``name priority cost period [deadline [offset]]``;
* ``fault`` — a cost overrun (``extra``) or under-run (``saved``) for
  one job;
* ``#`` starts a comment; blank lines are ignored.

:func:`format_scenario` writes the same format back (round-trip tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.faults import CostOverrun, CostUnderrun, FaultInjector
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind
from repro.units import MS, NS, S, US, parse_duration

__all__ = ["Scenario", "ScenarioError", "parse_scenario", "load_scenario", "format_scenario"]

_UNITS = {"ns": NS, "us": US, "ms": MS, "s": S}
_TASK_POSITIONAL = ("name", "priority", "cost", "period", "deadline", "offset")


class ScenarioError(ValueError):
    """Malformed scenario file; the message carries the line number."""


@dataclass
class Scenario:
    """A parsed system description, ready to simulate."""

    taskset: TaskSet
    faults: FaultInjector = field(default_factory=FaultInjector)
    treatment: TreatmentKind | None = None
    horizon: int | None = None
    unit: int = MS

    def horizon_or_default(self) -> int:
        """Explicit horizon, or one hyperperiod (plus largest offset)."""
        if self.horizon is not None:
            return self.horizon
        offset = max((t.offset for t in self.taskset), default=0)
        return offset + self.taskset.hyperperiod()


def parse_scenario(text: str, *, source: str = "<string>") -> Scenario:
    """Parse scenario *text*; raises :class:`ScenarioError` on problems."""
    unit = MS
    horizon: int | None = None
    treatment: TreatmentKind | None = None
    tasks: list[Task] = []
    deviations: list[CostOverrun | CostUnderrun] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        where = f"{source}:{lineno}"
        words = line.split()
        head, args = words[0], words[1:]
        try:
            if head == "@unit":
                unit = _parse_unit(args)
            elif head == "@horizon":
                horizon = _duration(args[0], unit)
            elif head == "@treatment":
                treatment = TreatmentKind(args[0])
            elif head == "task":
                tasks.append(_parse_task(args, unit))
            elif head == "fault":
                deviations.append(_parse_fault(args, unit))
            else:
                raise ScenarioError(f"unknown directive {head!r}")
        except ScenarioError:
            raise
        except (ValueError, KeyError, IndexError) as exc:
            raise ScenarioError(f"{where}: {exc}") from exc

    if not tasks:
        raise ScenarioError(f"{source}: no tasks defined")
    taskset = TaskSet(tasks)
    for dev in deviations:
        if dev.task_name not in taskset:
            raise ScenarioError(f"{source}: fault targets unknown task {dev.task_name!r}")
    return Scenario(
        taskset=taskset,
        faults=FaultInjector(deviations),
        treatment=treatment,
        horizon=horizon,
        unit=unit,
    )


def load_scenario(path: str | Path) -> Scenario:
    """Parse the scenario file at *path*."""
    p = Path(path)
    return parse_scenario(p.read_text(), source=str(p))


def _parse_unit(args: list[str]) -> int:
    name = args[0]
    if name not in _UNITS:
        raise ValueError(f"unknown unit {name!r} (expected one of {sorted(_UNITS)})")
    return _UNITS[name]


def _duration(token: str, unit: int) -> int:
    # Exact Fraction-based conversion: "0.1" at @unit ms is exactly
    # 100_000 ns, with no float rounding window (see repro.units).
    return parse_duration(token, unit)


def _parse_task(args: list[str], unit: int) -> Task:
    fields: dict[str, str] = {}
    positional = 0
    for token in args:
        if "=" in token:
            key, value = token.split("=", 1)
            if key not in _TASK_POSITIONAL:
                raise ValueError(f"unknown task field {key!r}")
            if key in fields:
                raise ValueError(f"duplicate task field {key!r}")
            fields[key] = value
        else:
            if positional >= len(_TASK_POSITIONAL):
                raise ValueError(f"too many positional fields at {token!r}")
            key = _TASK_POSITIONAL[positional]
            if key in fields:
                raise ValueError(f"field {key!r} given twice")
            fields[key] = token
            positional += 1
    for required in ("name", "priority", "cost", "period"):
        if required not in fields:
            raise ValueError(f"task missing {required!r}")
    return Task(
        name=fields["name"],
        priority=int(fields["priority"]),
        cost=_duration(fields["cost"], unit),
        period=_duration(fields["period"], unit),
        deadline=_duration(fields["deadline"], unit) if "deadline" in fields else -1,
        offset=_duration(fields["offset"], unit) if "offset" in fields else 0,
    )


def _parse_fault(args: list[str], unit: int) -> CostOverrun | CostUnderrun:
    if not args:
        raise ValueError("fault needs a task name")
    name = args[0]
    fields: dict[str, str] = {}
    for token in args[1:]:
        if "=" not in token:
            raise ValueError(f"fault fields must be key=value, got {token!r}")
        key, value = token.split("=", 1)
        fields[key] = value
    if "job" not in fields:
        raise ValueError("fault missing job=")
    job = int(fields["job"])
    if "extra" in fields:
        return CostOverrun(name, job, _duration(fields["extra"], unit))
    if "saved" in fields:
        return CostUnderrun(name, job, _duration(fields["saved"], unit))
    raise ValueError("fault needs extra= (overrun) or saved= (under-run)")


def format_scenario(scenario: Scenario) -> str:
    """Render *scenario* back to the file format (round-trippable)."""
    unit = scenario.unit
    unit_name = {v: k for k, v in _UNITS.items()}[unit]

    def dur(ticks: int) -> str:
        value = ticks / unit
        return f"{ticks // unit}" if ticks % unit == 0 else f"{value:g}"

    lines = [f"@unit {unit_name}"]
    if scenario.horizon is not None:
        lines.append(f"@horizon {dur(scenario.horizon)}")
    if scenario.treatment is not None:
        lines.append(f"@treatment {scenario.treatment.value}")
    for t in scenario.taskset:
        parts = [
            f"task {t.name}",
            f"priority={t.priority}",
            f"cost={dur(t.cost)}",
            f"period={dur(t.period)}",
            f"deadline={dur(t.deadline)}",
        ]
        if t.offset:
            parts.append(f"offset={dur(t.offset)}")
        lines.append(" ".join(parts))
    for (name, job), delta in sorted(scenario.faults.deviations.items()):
        if delta == 0:
            continue  # accumulated deviations cancelled out: no fault
        kind = "extra" if delta > 0 else "saved"
        lines.append(f"fault {name} job={job} {kind}={dur(abs(delta))}")
    return "\n".join(lines) + "\n"
