"""The "virtual machine": owns threads, timers and the simulation run.

Deviation from Java, where the VM is ambient: threads and timers attach
to an explicit :class:`RealtimeSystem` so independent experiments never
share state.  ``run(until)`` is the moment the paper's static task
system is launched — the full thread set is known, admission control
data (WCRTs, allowances) can be computed, detectors installed, and the
schedule played out on the simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.faults import CostOverrun, FaultInjector
from repro.core.task import TaskSet
from repro.rtsj.scheduler import ExtendedPriorityScheduler, Scheduler
from repro.sim.simulation import SimResult, Simulation
from repro.sim.vm import EXACT_VM, VMProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtsj.thread import RealtimeThread
    from repro.rtsj.timer import _Timer

__all__ = ["RealtimeSystem"]


class RealtimeSystem:
    """Container for one RTSJ 'machine' and its run."""

    def __init__(
        self, vm: VMProfile = EXACT_VM, scheduler: Scheduler | None = None
    ):
        self.vm = vm
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else ExtendedPriorityScheduler()
        )
        self._threads: list["RealtimeThread"] = []
        self._timers: list["_Timer"] = []
        self.simulation: Simulation | None = None

    # -- registration (called from constructors) ------------------------------
    def _register_thread(self, thread: "RealtimeThread") -> None:
        if any(t.name == thread.name for t in self._threads):
            raise ValueError(f"duplicate thread name {thread.name!r}")
        self._threads.append(thread)

    def _register_timer(self, timer: "_Timer") -> None:
        self._timers.append(timer)

    @property
    def threads(self) -> tuple["RealtimeThread", ...]:
        return tuple(self._threads)

    def taskset(self) -> TaskSet:
        """Analysis view of the *started* threads."""
        started = [t for t in self._threads if t.started]
        return TaskSet(t.as_task() for t in started)

    # -- execution ----------------------------------------------------------------
    def run(self, until: int) -> SimResult:
        """Launch the started threads and play the system out to
        *until* nanoseconds.  Can only be called once per system."""
        if self.simulation is not None:
            raise RuntimeError("system already ran; build a fresh RealtimeSystem")
        started = [t for t in self._threads if t.started]
        if not started:
            raise RuntimeError("no started threads")
        taskset = TaskSet(t.as_task() for t in started)
        faults = FaultInjector(
            CostOverrun(t.name, job, extra)
            for t in started
            for job, extra in t.injected_overruns.items()
        )
        sim = Simulation(taskset, horizon=until, faults=faults, vm=self.vm)
        self.simulation = sim
        for t in started:
            sim.job_start_hooks.setdefault(t.name, []).append(t._job_started)
            sim.job_end_hooks.setdefault(t.name, []).append(t._job_ended)
        # Give threads their pre-run step (the extended class installs
        # its detectors here: the full set is now known, so WCRTs and
        # allowances — the admission-control by-products the detectors
        # reuse — are computable).
        for t in started:
            pre_run = getattr(t, "_pre_run", None)
            if pre_run is not None:
                pre_run(taskset)
        for timer in self._timers:
            if timer.started:
                timer._arm(sim.engine, self.vm, until)
        return sim.run()
