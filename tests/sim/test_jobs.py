"""Unit tests for job state and stop-cap semantics."""

import pytest

from repro.core.task import Task
from repro.sim.jobs import Job, JobState


def make_job(cost=10, period=100, deadline=50, release=0, demand=None) -> Job:
    task = Task("t", cost=cost, period=period, deadline=deadline, priority=1)
    return Job(task=task, index=0, release=release, demand=demand if demand is not None else cost)


class TestBasics:
    def test_initial_state(self):
        job = make_job()
        assert job.state is JobState.PENDING
        assert job.remaining == 10
        assert not job.finished
        assert job.response_time is None

    def test_absolute_deadline(self):
        job = make_job(release=1000, deadline=50)
        assert job.absolute_deadline == 1050

    def test_response_time(self):
        job = make_job(release=1000)
        job.finished_at = 1040
        assert job.response_time == 40

    def test_overran_flag(self):
        assert not make_job(cost=10, demand=10).overran
        assert make_job(cost=10, demand=15).overran

    def test_remaining_tracks_executed(self):
        job = make_job(cost=10)
        job.executed = 4
        assert job.remaining == 6

    def test_remaining_never_negative(self):
        job = make_job(cost=10)
        job.executed = 25
        assert job.remaining == 0


class TestOverhead:
    def test_overhead_extends_required(self):
        job = make_job(cost=10)
        job.add_overhead(3)
        assert job.required == 13
        assert job.remaining == 13

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            make_job().add_overhead(-1)


class TestTruncate:
    def test_truncate_shortens_job(self):
        job = make_job(cost=10, demand=40)
        job.executed = 5
        assert job.truncate(0) is True
        assert job.remaining == 0
        assert job.stop_requested

    def test_truncate_with_poll_latency(self):
        job = make_job(cost=10, demand=40)
        job.executed = 5
        assert job.truncate(3) is True
        assert job.remaining == 3

    def test_truncate_noop_when_job_finishes_first(self):
        job = make_job(cost=10, demand=10)
        job.executed = 9
        # 9 + 2 >= 10: the job completes naturally before the poll.
        assert job.truncate(2) is False
        assert not job.stop_requested
        assert job.remaining == 1

    def test_tighter_cap_wins(self):
        job = make_job(cost=10, demand=40)
        job.truncate(20)
        job.truncate(5)
        assert job.remaining == 5

    def test_looser_cap_ignored(self):
        job = make_job(cost=10, demand=40)
        job.truncate(5)
        job.truncate(20)
        assert job.remaining == 5

    def test_truncate_accounts_overhead(self):
        job = make_job(cost=10, demand=40)
        job.add_overhead(4)
        job.executed = 6
        job.truncate(2)
        # total consumed should stop at 8.
        assert job.remaining == 2

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            make_job().truncate(-1)


class TestStates:
    def test_finished_states(self):
        job = make_job()
        for state in (JobState.DONE, JobState.STOPPED):
            job.state = state
            assert job.finished
        job.state = JobState.RUNNING
        assert not job.finished

    def test_was_stopped(self):
        job = make_job()
        job.state = JobState.STOPPED
        assert job.was_stopped
        job.state = JobState.DONE
        assert not job.was_stopped
