"""Vectorized replay of the per-job ``RandomFaults`` draw streams.

``RandomFaults.demand`` derives one ``random.Random`` per ``(task,
job)`` key via :func:`repro.rng.derive_rng`: a CRC-32 of the key's
reprs seeds a fresh MT19937 state, one ``random()`` draw decides
whether the job overruns, and a faulty job sizes its overrun with
``randint(1, max_extra)``.  Each derivation costs a few microseconds —
invisible per system, dominant when the population stepper
(:mod:`repro.sim.batch`) replays half a million jobs per sweep chunk.

This module reproduces the identical draw sequence in numpy, one
*stream* (row) per job:

* the CRC-32 keys come from :func:`zlib.crc32` extended incrementally
  over the shared ``repr(seed)\\x1f repr(name)\\x1f`` prefix, which is
  exactly how :func:`repro.rng.stable_hash` combines parts;
* MT19937 seeding is CPython's ``init_by_array`` with the single-word
  key — three 624-step mixing passes, each step a vector op across all
  streams;
* only the first few outputs are materialized: the first twist's
  leading columns depend on state words ``[0, W]`` and ``[397,
  397 + W]`` alone, so the full 624-word twist is never computed;
* ``random()`` is the two-word 53-bit recipe and ``randint`` is the
  ``_randbelow`` shift-and-reject loop, resolved column by column
  across the still-pending streams.

Bit equality with the scalar path is not a goal but an invariant: the
oracle suite (``tests/oracle``) asserts record-level identity against
the exact engine, and anything the vector path cannot express — a
``max_extra`` wider than one 32-bit ``getrandbits`` word, or a
straggler job that rejects more words than the precomputed block —
falls back to re-deriving that one stream with ``random.Random``
itself, which is identical by definition.
"""

from __future__ import annotations

import random
import zlib

import numpy as np

__all__ = ["job_seeds", "uniform_extras"]

_N = 624  # MT19937 state words
_M = 397  # twist offset
_U32 = np.uint32
#: Tempered output words materialized per stream: 2 for ``random()``
#: plus up to ``_WORDS - 2`` rejection trials before the scalar
#: fallback takes over (each trial rejects with probability < 1/2, so
#: fallbacks are one-in-tens-of-thousands events).
_WORDS = 16
#: Streams per seeding batch — bounds peak state memory at
#: ``_ROWS * 624 * 4`` bytes (~41 MiB) regardless of sweep size.
_ROWS = 16_384


def job_seeds(seed: int, task_name: str, count: int) -> np.ndarray:
    """``stable_hash(seed, task_name, job)`` for ``job in range(count)``.

    CRC-32 is a rolling checksum, so the hash of ``prefix + repr(job)``
    is ``crc32(repr(job), crc32(prefix))`` — the per-key cost is one
    short ``crc32`` call instead of a join over reprs."""
    prefix = f"{seed!r}\x1f{task_name!r}\x1f".encode("utf-8", "surrogatepass")
    pc = zlib.crc32(prefix)
    return np.array(
        [zlib.crc32(str(job).encode(), pc) for job in range(count)],
        dtype=np.uint32,
    )


def _genrand_base() -> np.ndarray:
    """The MT19937 state after ``init_genrand(19650218)`` — the first
    phase of ``init_by_array`` is seed-independent, so it is a 624-word
    constant shared by every stream (computed once at import)."""
    mt = np.empty(_N, dtype=np.uint64)
    mt[0] = 19650218
    for i in range(1, _N):
        prev = int(mt[i - 1])
        mt[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
    return mt.astype(np.uint32)


_GENRAND_BASE = _genrand_base()


def _init_states(seeds: np.ndarray) -> np.ndarray:
    """CPython's ``init_by_array`` MT19937 seeding, vectorized across
    streams: ``random.Random(int(s))`` for a 32-bit ``s`` seeds with
    the single-word key ``[s]``.  Sequential over the 624 state words,
    vector over the ``(streams,)`` axis."""
    # State-major layout: ``mt[i]`` is the i-th state word of every
    # stream, contiguous in memory — the 624-step passes then touch
    # one cache-friendly row per step instead of a strided column.
    # The seed-independent init_genrand phase is one broadcast copy;
    # the mixing passes run alloc-free through a scratch row.
    rows = seeds.shape[0]
    mt = np.empty((_N, rows), dtype=np.uint32)
    mt[:] = _GENRAND_BASE[:, None]
    key = seeds.astype(np.uint32)
    tmp = np.empty(rows, dtype=np.uint32)
    # First mixing pass: 624 steps, key word + key index (always 0).
    i = 1
    for _ in range(_N):
        prev = mt[i - 1]
        row = mt[i]
        np.right_shift(prev, _U32(30), out=tmp)
        np.bitwise_xor(tmp, prev, out=tmp)
        np.multiply(tmp, _U32(1664525), out=tmp)
        np.bitwise_xor(row, tmp, out=row)
        np.add(row, key, out=row)
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    # Second mixing pass: 623 steps, subtracting the position.
    for _ in range(_N - 1):
        prev = mt[i - 1]
        row = mt[i]
        np.right_shift(prev, _U32(30), out=tmp)
        np.bitwise_xor(tmp, prev, out=tmp)
        np.multiply(tmp, _U32(1566083941), out=tmp)
        np.bitwise_xor(row, tmp, out=row)
        np.subtract(row, _U32(i), out=row)
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    mt[0] = _U32(0x80000000)
    return mt


def _first_words(mt: np.ndarray, w: int) -> np.ndarray:
    """The first *w* tempered outputs of each stream, word-major:
    ``(w, streams)``, with ``w`` ≤ 227.

    Output ``j`` of the first twist reads old state words ``j``,
    ``j + 1`` and ``j + 397`` only, so a ``w``-column slice of the
    twist suffices — the remaining 624 − w words are never needed."""
    y = (mt[:w] & _U32(0x80000000)) | (mt[1 : w + 1] & _U32(0x7FFFFFFF))
    out = (
        mt[_M : _M + w]
        ^ (y >> _U32(1))
        ^ np.where(y & _U32(1), _U32(0x9908B0DF), _U32(0))
    )
    out ^= out >> _U32(11)
    out ^= (out << _U32(7)) & _U32(0x9D2C5680)
    out ^= (out << _U32(15)) & _U32(0xEFC60000)
    out ^= out >> _U32(18)
    return out


def _scalar_extra(seed: int, rate: float, max_extra: int) -> int:
    """The scalar draw for one stream — ``RandomFaults.demand`` minus
    the cost: identical by construction, used for the streams the
    vector path hands back."""
    rng = random.Random(seed)
    return rng.randint(1, max_extra) if rng.random() < rate else 0


def uniform_extras(
    seeds: np.ndarray, rates: np.ndarray, maxes: np.ndarray
) -> np.ndarray:
    """Per-stream overrun sizes for ``derive_rng``-seeded fault draws.

    For each stream ``i`` the result equals ``RandomFaults`` demand
    extra for a job whose derived seed is ``seeds[i]``: ``0`` with
    probability ``1 - rates[i]``, else uniform on ``[1, maxes[i]]`` —
    bit-for-bit the draws of ``random.Random(seeds[i])``."""
    total = int(seeds.shape[0])
    extras = np.zeros(total, dtype=np.int64)
    if not total:
        return extras
    # 32 - bit_length per stream; maxes arrive as a few per-system
    # constants, so resolving via unique values is cheap.  A negative
    # shift (max_extra needs >1 getrandbits word) is scalar territory.
    shift = np.empty(total, dtype=np.int64)
    for m in np.unique(maxes):
        shift[maxes == m] = 32 - int(m).bit_length()
    for lo in range(0, total, _ROWS):
        hi = min(lo + _ROWS, total)
        out = _first_words(_init_states(seeds[lo:hi]), _WORDS)
        # random() — genrand_res53: two words fold into one double.
        a = (out[0] >> _U32(5)).astype(np.float64)
        b = (out[1] >> _U32(6)).astype(np.float64)
        u = (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)
        faulty = np.nonzero(u < rates[lo:hi])[0]
        # randint(1, m) = 1 + _randbelow(m): shift a word down to m's
        # bit length, reject while >= m.
        vec = faulty[shift[lo + faulty] >= 0]
        col = 2
        while vec.size and col < _WORDS:
            r = out[col, vec].astype(np.int64) >> shift[lo + vec]
            ok = r < maxes[lo + vec]
            extras[lo + vec[ok]] = 1 + r[ok]
            vec = vec[~ok]
            col += 1
        # Stragglers (ran out of materialized words) and >32-bit
        # max_extra streams: re-derive scalar, identical by definition.
        leftover = set(vec.tolist()) | set(
            faulty[shift[lo + faulty] < 0].tolist()
        )
        for i in leftover:
            extras[lo + i] = _scalar_extra(
                int(seeds[lo + i]), float(rates[lo + i]), int(maxes[lo + i])
            )
    return extras
