"""Vectorized lock-step simulation of task-system *populations*.

The paper's claims are per-system; evaluating them over populations
(thousands of generated systems swept across utilization, task count
and fault rate) makes per-system event loops the bottleneck.  This
module adds a numpy stepper that advances hundreds of independent
systems at once for the cases the sweeps hit most — preemptive
fixed-priority, periodic releases, no locks, no servers, zero
context-switch cost — including the paper's core workload: injected
cost overruns with detector-based treatments:

* state is a handful of ``(systems, tasks)`` int64 arrays
  (``next_release``, head-job ``remaining``, released/done counters)
  plus a flat per-job *demand* table precomputed from the fault model
  (bit-for-bit the values the exact engine draws, since both sides
  query the same ``derive_rng``-keyed streams);
* each step advances every system to its *own* next event instant
  (completion, detector stop or release) and applies all simultaneous
  events in the engine's rank order — completions, then detector
  stops, then releases (:class:`repro.sim.engine.Rank` semantics,
  reproduced in closed form);
* a stopping treatment (§4.1 immediate stop, §4.2 equitable allowance)
  contributes one pending stop instant per task: ``release + offset``
  of the *head* job's detector.  Only head jobs can be stopped — the
  previous job of the same thread always ends at or before its own
  detector instant, which precedes the next job's — so a single
  per-column stop time is exact, not an approximation;
* deadline misses and detect-only detections are evaluated in closed
  form afterwards: a released job missed iff its absolute deadline
  lies within the horizon and it did not finish by then — where a job
  *stopped exactly at* its deadline still misses, because the
  DEADLINE_CHECK rank precedes DETECTOR — and a detect-only job is
  flagged iff it was unfinished when its detector fired (detect-only
  never alters the schedule).

Results are **bit-identical** to :func:`repro.sim.simulation.simulate`
run per system — :func:`schedule_fingerprint` hashes the per-job
``(name, index, release, finished, missed, stopped, detected)`` records
of either path and the equivalence suite asserts equality over hundreds
of ``derive_rng``-seeded systems, fault schedules and treatments.

Systems that need anything richer are rejected by :func:`classify`
with a machine-readable reason and must be routed to the exact
per-system engine by the caller's classifier fallback (see
``repro.exec.sweep``; lint rule RT010 keeps that routing honest).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.detection import RoundingMode
from repro.core.faults import FaultInjector, FaultModel, NoFaults, RandomFaults
from repro.core.task import TaskSet
from repro.core.treatments import TreatmentKind, TreatmentPlan
from repro.rng import stable_hash
from repro.workloads.faultstream import job_seeds, uniform_extras
from repro.sim.simulation import SimResult
from repro.sim.vm import EXACT_VM, NoOverhead, VMProfile

__all__ = [
    "JobRecord",
    "BatchSystemResult",
    "classify",
    "simulate_batch",
    "sim_job_records",
    "schedule_fingerprint",
]

#: One job's observable outcome: ``(task name, job index, release,
#: finished_at or -1, deadline_missed, was_stopped, fault_detected)``.
#: The shared vocabulary of the batched and exact paths — fingerprints
#: hash a sorted tuple of these.
JobRecord = tuple[str, int, int, int, bool, bool, bool]

#: Sentinel "no pending event" instant (far beyond any horizon).
_INF = np.int64(1 << 62)

#: Fault models the stepper can expand into a per-job demand table:
#: their draws are keyed per ``(task, job)`` (order-independent), so
#: precomputing the table reproduces the exact engine's queries
#: bit-for-bit.  An opaque :class:`FaultModel` implementation might
#: depend on query order and stays on the exact engine.
_TABLE_FAULTS = (NoFaults, FaultInjector, RandomFaults)


@dataclass(frozen=True)
class BatchSystemResult:
    """One system's outcome from the vectorized stepper.

    The counters are aggregated from the same arrays the records come
    from (prefix sums, not a Python pass over the tuples), so
    consumers on the hot path never re-iterate millions of records;
    the stepper-parity suite pins them equal to the exact engine's."""

    horizon: int
    records: tuple[JobRecord, ...]
    released: int
    #: Jobs that finished *normally* (stopped jobs end but do not
    #: complete — the same convention the exact path's summary uses).
    completed: int
    misses: int
    #: Jobs terminated by a stopping treatment (§4.1 / §4.2).
    stopped: int
    #: Jobs flagged by a detector (for stopping treatments this equals
    #: ``stopped``; detect-only flags without ending the job).
    detections: int
    #: Distinct tasks with at least one missed or stopped job.
    failed_task_count: int
    #: Failed tasks that were *not* themselves granted extra demand —
    #: the paper's collateral-failure count (failed minus faulty).
    collateral_task_count: int


def classify(
    taskset: TaskSet,
    *,
    faults: FaultModel | None = None,
    treatment: TreatmentKind | TreatmentPlan | None = None,
    vm: VMProfile = EXACT_VM,
    arrivals: Any = None,
    sections: Any = None,
    horizon: int | None = None,
) -> str | None:
    """Why this configuration cannot take the vectorized path, or
    ``None`` when it can.

    The stepper models exactly what :func:`simulate` does for the
    preemptive fixed-priority case — including per-job cost-deviation
    faults (:class:`FaultInjector` / :class:`RandomFaults`) and the
    detect-only, immediate-stop and equitable-allowance treatments on
    an ideal VM; every other knob routes the system to the exact
    engine.  Reasons are stable machine-readable codes (they feed the
    ``sweep_fallback_total{reason=...}`` telemetry counters):

    * ``opaque-fault-model`` — a fault model whose draws cannot be
      precomputed per ``(task, job)``;
    * ``system-allowance`` — §4.3's residual-grant book-keeping stays
      on the exact engine;
    * ``weakly-hard-treatment`` — the (m, K) treatments (SKIP_JOB /
      DEGRADE / MISS_BUDGET) drop or reshape individual jobs and keep
      per-window miss state, which the stepper does not model;
    * ``detector-fire-cost`` / ``stop-poll-overhead`` — VM overheads
      that perturb the schedule around detector events;
    * ``rounding-can-zero-detectors`` — DOWN/NEAREST timer rounding can
      place a detector *at* the release instant, whose semantics depend
      on engine event order (round-UP and exact timers cannot);
    * ``zero-detector-offset`` — an explicit plan that already did;
    * ``context-switch-cost`` / ``sporadic-arrivals`` /
      ``critical-sections`` / ``duplicate-priorities`` — as before.

    *horizon*, when given, lets a :class:`FaultInjector` whose
    deviations all target jobs released after the horizon count as
    trivial (they cannot influence the schedule).
    """
    if faults is not None and not _trivial_faults(faults, taskset, horizon):
        if not isinstance(faults, _TABLE_FAULTS):
            return "opaque-fault-model"
    kind = treatment.kind if isinstance(treatment, TreatmentPlan) else treatment
    if kind is not None and kind is not TreatmentKind.NO_DETECTION:
        if kind.weakly_hard:
            return "weakly-hard-treatment"
        if kind is TreatmentKind.SYSTEM_ALLOWANCE:
            return "system-allowance"
        if vm.detector_fire_cost != 0:
            return "detector-fire-cost"
        if kind.stops_tasks and not isinstance(vm.stop_poll_overhead, NoOverhead):
            return "stop-poll-overhead"
        if isinstance(treatment, TreatmentPlan):
            if any(d.offset <= 0 for d in treatment.detectors.values()):
                return "zero-detector-offset"
        elif vm.timer_rounding.mode in (RoundingMode.DOWN, RoundingMode.NEAREST):
            return "rounding-can-zero-detectors"
    if vm.context_switch != 0:
        return "context-switch-cost"
    if arrivals:
        return "sporadic-arrivals"
    if sections:
        return "critical-sections"
    priorities = [t.priority for t in taskset]
    if len(set(priorities)) != len(priorities):
        return "duplicate-priorities"
    return None


def _trivial_faults(
    faults: FaultModel, taskset: TaskSet | None = None, horizon: int | None = None
) -> bool:
    """Fault models under which every demand equals the declared cost.

    With *taskset* and *horizon*, a :class:`FaultInjector` is also
    trivial when every deviation targets an unknown task or a job whose
    release lies beyond the horizon — such jobs are never released, so
    the deviations cannot influence the schedule."""
    if isinstance(faults, NoFaults):
        return True
    if isinstance(faults, FaultInjector):
        if not faults.deviations:
            return True
        if taskset is None or horizon is None:
            return False
        by_name = {t.name: t for t in taskset}
        return all(
            name not in by_name or by_name[name].release_time(job) > horizon
            for name, job in faults.deviations
        )
    if isinstance(faults, RandomFaults):
        return faults.rate == 0.0
    return False


#: Systems stepped together.  Lock-step cost per bucket is
#: ``max(event count) x per-iteration overhead``, so buckets are filled
#: with event-count-sorted systems: heterogeneous populations (wide
#: log-uniform periods) then pay the busy systems' iteration count only
#: for the buckets that contain them, not for everyone.
_BUCKET = 512


def simulate_batch(
    systems: Sequence[TaskSet],
    horizons: Sequence[int],
    *,
    faults: Sequence[FaultModel | None] | None = None,
    plans: Sequence[TreatmentPlan | None] | None = None,
) -> list[BatchSystemResult]:
    """Run every system on the vectorized stepper.

    *faults* and *plans* (when given) align with *systems*: the fault
    model supplying per-job demands and the treatment plan supplying
    detector offsets of each system.  Systems are stepped in
    event-count-sorted buckets (an internal layout choice — every
    system is independent, so results are identical to any other
    grouping).  Callers must have routed each system through
    :func:`classify` first; the only checks repeated here are the cheap
    ones (everything else is configuration the stepper never sees).
    """
    if len(systems) != len(horizons):
        raise ValueError("need one horizon per system")
    fault_list = list(faults) if faults is not None else [None] * len(systems)
    plan_list = list(plans) if plans is not None else [None] * len(systems)
    if len(fault_list) != len(systems) or len(plan_list) != len(systems):
        raise ValueError("faults/plans must align with systems")
    if not systems:
        return []
    for ts, fm, plan in zip(systems, fault_list, plan_list):
        prios = [t.priority for t in ts]
        if len(set(prios)) != len(prios):
            raise ValueError("duplicate priorities: classify() should have rejected this system")
        if fm is not None and not isinstance(fm, _TABLE_FAULTS):
            raise ValueError("opaque fault model: classify() should have rejected this system")
        if plan is not None and plan.kind is TreatmentKind.SYSTEM_ALLOWANCE:
            raise ValueError("system allowance: classify() should have rejected this system")
    if len(systems) <= _BUCKET:
        return _step_lockstep(systems, list(horizons), fault_list, plan_list)
    weights = [
        sum(
            (h - t.offset) // t.period + 1
            for t in ts
            if t.offset <= h
        )
        for ts, h in zip(systems, horizons)
    ]
    order = sorted(range(len(systems)), key=lambda i: (weights[i], i))
    results: list[BatchSystemResult | None] = [None] * len(systems)
    for lo in range(0, len(order), _BUCKET):
        idx = order[lo : lo + _BUCKET]
        for i, res in zip(
            idx,
            _step_lockstep(
                [systems[i] for i in idx],
                [horizons[i] for i in idx],
                [fault_list[i] for i in idx],
                [plan_list[i] for i in idx],
            ),
        ):
            results[i] = res
    return [r for r in results if r is not None]


def _demand_table(
    systems: Sequence[TaskSet],
    fault_list: Sequence[FaultModel | None],
    cost: np.ndarray,
    counts: np.ndarray,
    job_base: np.ndarray,
    counts_flat: np.ndarray,
) -> np.ndarray:
    """The flat per-job demand table: declared costs overlaid with the
    fault models' deviations, aligned with the flat result slots.

    A :class:`FaultInjector` is applied sparsely through
    ``FaultModel.demand`` itself (only its deviation keys are visited)
    — the same calls the exact engine makes at each release, bit-exact
    by construction.  A :class:`RandomFaults` stream must be drawn for
    every released job; those draws are replayed vectorized by
    :mod:`repro.workloads.faultstream`, whose streams reproduce the
    exact engine's ``derive_rng`` draws bit-for-bit (oracle-checked)."""
    demand_flat = np.repeat(cost.reshape(-1), counts_flat)
    # (destination slot base, derived seeds, rate, max_extra) per
    # (system, task) segment — gathered chunk-wide so the MT19937
    # replay seeds every stream of the chunk in a few large batches.
    segments: list[tuple[int, np.ndarray, float, int]] = []
    for s, fm in enumerate(fault_list):
        if fm is None or isinstance(fm, NoFaults):
            continue
        tasks = list(systems[s])
        if isinstance(fm, FaultInjector):
            col = {t.name: i for i, t in enumerate(tasks)}
            for (name, job), _delta in fm.deviations.items():
                c = col.get(name)
                if c is not None and job < int(counts[s, c]):
                    demand_flat[int(job_base[s, c]) + job] = fm.demand(
                        name, job, tasks[c].cost
                    )
        elif fm.rate > 0.0:
            for c, task in enumerate(tasks):
                n = int(counts[s, c])
                if n:
                    segments.append(
                        (
                            int(job_base[s, c]),
                            job_seeds(fm.seed, task.name, n),
                            fm.rate,
                            fm.max_extra,
                        )
                    )
    if segments:
        extras = uniform_extras(
            np.concatenate([seeds for _, seeds, _, _ in segments]),
            np.concatenate(
                [np.full(seeds.size, rate) for _, seeds, rate, _ in segments]
            ),
            np.concatenate(
                [
                    np.full(seeds.size, m, dtype=np.int64)
                    for _, seeds, _, m in segments
                ]
            ),
        )
        pos = 0
        for base, seeds, _, _ in segments:
            demand_flat[base : base + seeds.size] += extras[pos : pos + seeds.size]
            pos += seeds.size
    return demand_flat


def _step_lockstep(
    systems: Sequence[TaskSet],
    horizons: Sequence[int],
    fault_list: Sequence[FaultModel | None],
    plan_list: Sequence[TreatmentPlan | None],
) -> list[BatchSystemResult]:
    """One lock-step pass over *systems* (see :func:`simulate_batch`)."""
    count = len(systems)
    width = max(len(ts) for ts in systems)

    # Padded (systems, tasks) parameter arrays; tasks come priority-
    # sorted out of TaskSet, so column order IS dispatch order and the
    # running task of a system is its first column with backlog.
    cost = np.zeros((count, width), dtype=np.int64)
    period = np.ones((count, width), dtype=np.int64)
    deadline = np.zeros((count, width), dtype=np.int64)
    offset = np.zeros((count, width), dtype=np.int64)
    valid = np.zeros((count, width), dtype=bool)
    horizon = np.asarray(list(horizons), dtype=np.int64)[:, None]
    if np.any(horizon <= 0):
        raise ValueError("horizon must be > 0")
    for s, ts in enumerate(systems):
        for i, task in enumerate(ts):
            cost[s, i] = task.cost
            period[s, i] = task.period
            deadline[s, i] = task.deadline
            offset[s, i] = task.offset
            valid[s, i] = True

    # Per-(system, task) job counts over the horizon (the engine only
    # ever schedules releases at or before it), and flat result slots.
    counts = np.where(
        valid & (offset <= horizon), (horizon - offset) // period + 1, 0
    )
    counts_flat = counts.reshape(-1)
    job_base = np.concatenate(([0], np.cumsum(counts_flat)[:-1])).reshape(count, width)
    total_jobs = int(counts_flat.sum())
    finished = np.full(total_jobs, -1, dtype=np.int64)
    stopped = np.zeros(total_jobs, dtype=bool)
    detected = np.zeros(total_jobs, dtype=bool)

    # Fault model → flat per-job demand table (bit-exact draws).
    demand_flat = _demand_table(systems, fault_list, cost, counts, job_base, counts_flat)

    # Treatment plans → per-task detector offsets and per-system mode
    # flags.  Stopping kinds feed the event loop (a stop cancels the
    # head job's remaining demand); detect-only is schedule-neutral and
    # resolved in closed form after the loop.
    det = np.full((count, width), _INF, dtype=np.int64)
    stops_on = np.zeros(count, dtype=bool)
    detect_only = np.zeros(count, dtype=bool)
    for s, plan in enumerate(plan_list):
        if plan is None or plan.kind is TreatmentKind.NO_DETECTION:
            continue
        if plan.kind.stops_tasks:
            stops_on[s] = True
        else:
            detect_only[s] = True
        for c, task in enumerate(systems[s]):
            spec = plan.detector_for(task.name)
            if spec is not None:
                det[s, c] = spec.offset
    has_stops = bool(stops_on.any())

    # Mutable stepper state.
    next_rel = np.where(valid & (offset <= horizon), offset, _INF)
    released = np.zeros((count, width), dtype=np.int64)
    done = np.zeros((count, width), dtype=np.int64)
    head_rem = np.zeros((count, width), dtype=np.int64)
    now = np.zeros(count, dtype=np.int64)
    rows = np.arange(count)

    horizon1 = horizon[:, 0]
    hbc = np.broadcast_to(horizon, (count, width))
    last_slot = max(total_jobs - 1, 0)
    while True:
        active = released > done
        any_active = active.any(axis=1)
        run_idx = np.argmax(active, axis=1)  # first backlogged column = running task
        t_complete = now + head_rem[rows, run_idx]
        t_complete[~any_active] = _INF
        t_next = np.minimum(t_complete, next_rel.min(axis=1))
        if has_stops:
            # Pending stop instant per column: the *head* job's detector
            # (release + offset).  Newly activated heads always have
            # stop instants strictly in the future (or beyond the
            # horizon), so one instant per column covers every job.
            stop_at = np.where(
                active & stops_on[:, None],
                offset + done * period + det,
                _INF,
            )
            t_next = np.minimum(t_next, stop_at.min(axis=1))
        live = t_next <= horizon1
        if not live.any():
            break
        # Mask finished systems out of every instant comparison below
        # (no event time is negative, so -1 matches nothing).
        t_next[~live] = -1
        # Charge the running head for the interval it just executed.
        charge = live & any_active
        head_rem[rows[charge], run_idx[charge]] -= (t_next - now)[charge]
        now[live] = t_next[live]
        # Completions first (Rank.COMPLETION precedes everything): the
        # head job ends, and the next backlogged job of the same thread
        # — if any — becomes the head immediately, within this instant.
        comp = charge & (t_complete == t_next)
        if comp.any():
            cr, cc = rows[comp], run_idx[comp]
            finished[job_base[cr, cc] + done[cr, cc]] = t_next[comp]
            done[cr, cc] += 1
            # Backlog head activation: the next job's own demand (the
            # clipped gather is a no-op write when the column idles).
            slot = np.minimum(job_base[cr, cc] + done[cr, cc], last_slot)
            head_rem[cr, cc] = demand_flat[slot]
        # Detector stops next (Rank.STOP/DETECTOR precede RELEASE): any
        # head whose detector instant is now and that did not complete
        # at this instant ends as stopped-and-detected.  Heads freshly
        # activated by a completion above never match (their detector
        # instants are strictly later), mirroring the engine where a
        # detector only ever fires for the job it was armed with.
        if has_stops:
            stop_hit = (
                stops_on[:, None]
                & (released > done)
                & (offset + done * period + det == t_next[:, None])
            )
            if stop_hit.any():
                sr, sc = np.nonzero(stop_hit)
                slot = job_base[sr, sc] + done[sr, sc]
                finished[slot] = t_next[sr]
                stopped[slot] = True
                detected[slot] = True
                done[sr, sc] += 1
                nxt = np.minimum(job_base[sr, sc] + done[sr, sc], last_slot)
                head_rem[sr, sc] = demand_flat[nxt]
        # Then releases: every task whose next release is this instant.
        rel = next_rel == t_next[:, None]
        if rel.any():
            was_idle = released == done
            released[rel] += 1
            fresh = rel & was_idle
            if fresh.any():
                fr, fc = np.nonzero(fresh)
                head_rem[fr, fc] = demand_flat[job_base[fr, fc] + done[fr, fc]]
            nxt = next_rel[rel] + period[rel]
            next_rel[rel] = np.where(nxt <= hbc[rel], nxt, _INF)

    if not np.array_equal(released, counts):  # pragma: no cover - invariant
        raise AssertionError("stepper released a different job set than the closed form")

    # Closed-form per-job outcomes over the flat slots.
    ks = np.arange(total_jobs, dtype=np.int64) - np.repeat(
        job_base.reshape(-1), counts_flat
    )
    rel_flat = np.repeat(offset.reshape(-1), counts_flat) + ks * np.repeat(
        period.reshape(-1), counts_flat
    )
    dl_flat = rel_flat + np.repeat(deadline.reshape(-1), counts_flat)
    hz_flat = np.repeat(hbc.reshape(-1), counts_flat)
    # A job stopped exactly at its deadline still misses: the engine
    # runs DEADLINE_CHECK (rank 2) before DETECTOR (rank 3) at the same
    # instant, so the check sees the job unfinished.  A job *completing*
    # at the deadline meets it (COMPLETION is rank 0).
    missed = (dl_flat <= hz_flat) & (
        (finished < 0) | (finished > dl_flat) | (stopped & (finished == dl_flat))
    )
    # Detect-only detections in closed form: the detector at
    # release+offset flags the job iff it had not finished by then
    # (the schedule itself is identical to the untreated run).
    if detect_only.any():
        det_off = np.repeat(
            np.where(detect_only[:, None], det, _INF).reshape(-1), counts_flat
        )
        det_at = rel_flat + det_off
        detected |= (det_at <= hz_flat) & ((finished < 0) | (finished > det_at))

    # Per-system / per-task aggregates at C speed: prefix sums over the
    # contiguous flat job segments (exact for empty segments, e.g. a
    # task whose offset lies beyond the horizon) — the counters
    # consumers read instead of re-iterating the record tuples.
    jobs_per_sys = counts.sum(axis=1)
    sys_starts = np.concatenate(([0], np.cumsum(jobs_per_sys)[:-1]))
    sys_ends = sys_starts + jobs_per_sys
    cum_completed = np.concatenate(([0], np.cumsum((finished >= 0) & ~stopped)))
    cum_missed = np.concatenate(([0], np.cumsum(missed)))
    cum_stopped = np.concatenate(([0], np.cumsum(stopped)))
    cum_detected = np.concatenate(([0], np.cumsum(detected)))
    sys_completed = cum_completed[sys_ends] - cum_completed[sys_starts]
    sys_missed = cum_missed[sys_ends] - cum_missed[sys_starts]
    sys_stopped = cum_stopped[sys_ends] - cum_stopped[sys_starts]
    sys_detected = cum_detected[sys_ends] - cum_detected[sys_starts]
    flat_starts = job_base.reshape(-1)
    flat_ends = flat_starts + counts_flat
    cum_failed = np.concatenate(([0], np.cumsum(missed | stopped)))
    task_failed = (cum_failed[flat_ends] - cum_failed[flat_starts]).reshape(
        count, width
    ) > 0
    # A task is *faulty* when any of its released jobs was granted
    # demand above the declared cost (the paper's definition); failed
    # tasks that are not faulty are collateral damage.
    cum_faulty = np.concatenate(
        ([0], np.cumsum(demand_flat > np.repeat(cost.reshape(-1), counts_flat)))
    )
    task_faulty = (cum_faulty[flat_ends] - cum_faulty[flat_starts]).reshape(
        count, width
    ) > 0
    failed_tasks = task_failed.sum(axis=1)
    collateral_tasks = (task_failed & ~task_faulty).sum(axis=1)

    results: list[BatchSystemResult] = []
    ks_l = ks.tolist()
    rel_l = rel_flat.tolist()
    fin_l = finished.tolist()
    miss_l = missed.tolist()
    stop_l = stopped.tolist()
    det_l = detected.tolist()
    for s, ts in enumerate(systems):
        tasks = list(ts)
        records: list[JobRecord] = []
        # Emit in task-name order: record tuples sort by name first and
        # job index second, so the concatenation is already sorted.
        for i in sorted(range(len(tasks)), key=lambda j: tasks[j].name):
            base = int(job_base[s, i])
            end = base + int(counts[s, i])
            records.extend(
                zip(  # C-level tuple assembly: millions of records per sweep
                    itertools.repeat(tasks[i].name),
                    ks_l[base:end],
                    rel_l[base:end],
                    fin_l[base:end],
                    miss_l[base:end],
                    stop_l[base:end],
                    det_l[base:end],
                )
            )
        results.append(
            BatchSystemResult(
                horizon=int(horizon[s, 0]),
                records=tuple(records),
                released=int(jobs_per_sys[s]),
                completed=int(sys_completed[s]),
                misses=int(sys_missed[s]),
                stopped=int(sys_stopped[s]),
                detections=int(sys_detected[s]),
                failed_task_count=int(failed_tasks[s]),
                collateral_task_count=int(collateral_tasks[s]),
            )
        )
    return results


def sim_job_records(result: SimResult) -> tuple[JobRecord, ...]:
    """The :data:`JobRecord` view of an exact-engine run (sorted)."""
    records = sorted(
        (
            job.name,
            job.index,
            job.release,
            job.finished_at if job.finished_at is not None else -1,
            bool(job.deadline_missed),
            bool(job.was_stopped),
            bool(job.fault_detected),
        )
        for job in result.jobs.values()
    )
    return tuple(records)


def schedule_fingerprint(result: SimResult | BatchSystemResult) -> str:
    """Stable content hash of one system's schedule outcome.

    Identical for a vectorized and an exact run of the same system —
    the bit-equivalence contract the batch suite enforces.
    """
    records = (
        result.records
        if isinstance(result, BatchSystemResult)
        else sim_job_records(result)
    )
    return f"{stable_hash(records):08x}"
