"""Unit tests for treatment planning and runtime (paper §4)."""

import pytest

from repro.core.detection import JRATE_10MS
from repro.core.task import Task, TaskSet
from repro.core.treatments import (
    StopDirective,
    TreatmentKind,
    plan_treatment,
)
from repro.units import ms


class TestTreatmentKind:
    def test_detector_installation(self):
        assert not TreatmentKind.NO_DETECTION.installs_detectors
        assert TreatmentKind.DETECT_ONLY.installs_detectors
        assert TreatmentKind.SYSTEM_ALLOWANCE.installs_detectors

    def test_stopping(self):
        assert not TreatmentKind.NO_DETECTION.stops_tasks
        assert not TreatmentKind.DETECT_ONLY.stops_tasks
        assert TreatmentKind.IMMEDIATE_STOP.stops_tasks
        assert TreatmentKind.EQUITABLE_ALLOWANCE.stops_tasks
        assert TreatmentKind.SYSTEM_ALLOWANCE.stops_tasks

    def test_values_roundtrip(self):
        for kind in TreatmentKind:
            assert TreatmentKind(kind.value) is kind


class TestPlanTreatment:
    def test_no_detection_has_no_detectors(self, table2):
        plan = plan_treatment(table2, TreatmentKind.NO_DETECTION)
        assert plan.detectors == {}
        assert plan.detector_for("tau1") is None

    def test_detect_only_thresholds_are_wcrt(self, table2):
        plan = plan_treatment(table2, TreatmentKind.DETECT_ONLY)
        assert plan.detectors["tau1"].nominal_offset == ms(29)
        assert plan.detectors["tau2"].nominal_offset == ms(58)
        assert plan.detectors["tau3"].nominal_offset == ms(87)

    def test_immediate_stop_thresholds_are_wcrt(self, table2):
        plan = plan_treatment(table2, TreatmentKind.IMMEDIATE_STOP)
        assert plan.detectors["tau1"].nominal_offset == ms(29)

    def test_equitable_thresholds_are_adjusted_wcrt(self, table2):
        plan = plan_treatment(table2, TreatmentKind.EQUITABLE_ALLOWANCE)
        assert plan.equitable is not None and plan.equitable.value == ms(11)
        assert plan.detectors["tau1"].nominal_offset == ms(40)
        assert plan.detectors["tau2"].nominal_offset == ms(80)
        assert plan.detectors["tau3"].nominal_offset == ms(120)

    def test_system_thresholds(self, table2):
        plan = plan_treatment(table2, TreatmentKind.SYSTEM_ALLOWANCE)
        assert plan.system_grants == {
            "tau1": ms(33),
            "tau2": ms(33),
            "tau3": ms(33),
        }
        assert plan.detectors["tau1"].nominal_offset == ms(62)
        assert plan.detectors["tau3"].nominal_offset == ms(120)

    def test_rounding_applied_to_detectors(self, table2):
        plan = plan_treatment(table2, TreatmentKind.DETECT_ONLY, JRATE_10MS)
        assert plan.detectors["tau1"].offset == ms(30)
        assert plan.detectors["tau1"].nominal_offset == ms(29)

    def test_infeasible_set_rejected(self):
        ts = TaskSet(
            [
                Task("hi", cost=5, period=10, priority=2),
                Task("lo", cost=5, period=20, deadline=9, priority=1),
            ]
        )
        with pytest.raises(ValueError, match="admission control"):
            plan_treatment(ts, TreatmentKind.DETECT_ONLY)

    def test_wcrt_recorded(self, table2):
        plan = plan_treatment(table2, TreatmentKind.NO_DETECTION)
        assert plan.wcrt == {"tau1": ms(29), "tau2": ms(58), "tau3": ms(87)}


class TestTreatmentRuntime:
    def _detect(self, plan, name="tau1", job=5, release=ms(1000)):
        runtime = plan.runtime()
        fire = release + plan.detectors[name].offset
        return runtime, runtime.on_detect(name, job, release, fire)

    def test_detect_only_returns_none(self, table2):
        plan = plan_treatment(table2, TreatmentKind.DETECT_ONLY)
        runtime, directive = self._detect(plan)
        assert directive is None
        assert runtime.detections == [("tau1", 5, ms(1029))]

    def test_immediate_stop_stops_now(self, table2):
        plan = plan_treatment(table2, TreatmentKind.IMMEDIATE_STOP)
        _, directive = self._detect(plan)
        assert directive == StopDirective(at=ms(1029), granted=0)

    def test_equitable_grant_reported(self, table2):
        plan = plan_treatment(table2, TreatmentKind.EQUITABLE_ALLOWANCE)
        _, directive = self._detect(plan)
        assert directive is not None
        assert directive.at == ms(1040)
        assert directive.granted == ms(11)

    def test_system_grant_reported(self, table2):
        plan = plan_treatment(table2, TreatmentKind.SYSTEM_ALLOWANCE)
        _, directive = self._detect(plan)
        assert directive is not None
        assert directive.at == ms(1062)
        assert directive.granted == ms(33)

    def test_system_runtime_records_overruns(self, table2):
        plan = plan_treatment(table2, TreatmentKind.SYSTEM_ALLOWANCE)
        runtime = plan.runtime()
        assert runtime.manager is not None
        runtime.on_job_end("tau1", 5, ms(1000), ms(1049), stopped=False)
        # 1049 - (1000 + 29) = 20 ms of consumed overrun.
        assert runtime.manager.consumed == {"tau1": ms(20)}

    def test_non_system_runtime_ignores_job_end(self, table2):
        plan = plan_treatment(table2, TreatmentKind.IMMEDIATE_STOP)
        runtime = plan.runtime()
        runtime.on_job_end("tau1", 5, ms(1000), ms(1049), stopped=False)
        assert runtime.manager is None

    def test_fresh_runtime_per_call(self, table2):
        plan = plan_treatment(table2, TreatmentKind.SYSTEM_ALLOWANCE)
        r1, r2 = plan.runtime(), plan.runtime()
        r1.on_job_end("tau1", 5, ms(1000), ms(1049), stopped=False)
        assert r2.manager is not None and r2.manager.consumed == {}
