"""Unit tests for the RDTSC emulation (paper §5)."""

import pytest

from repro.sim.clock import CycleCounter, TimestampLog


class TestCycleCounter:
    def test_paper_frequency_two_cycles_per_ns(self):
        tsc = CycleCounter()  # 2 GHz Pentium 4
        assert tsc.cycles_at(1) == 2
        assert tsc.cycles_at(1_000) == 2_000

    def test_roundtrip(self):
        tsc = CycleCounter(frequency_hz=1_000_000_000)
        assert tsc.ns_of(tsc.cycles_at(123_456)) == 123_456

    def test_quantisation_rounds_down(self):
        tsc = CycleCounter(frequency_hz=1)  # 1 cycle per second
        assert tsc.cycles_at(999_999_999) == 0
        assert tsc.cycles_at(1_000_000_000) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CycleCounter(0)
        tsc = CycleCounter()
        with pytest.raises(ValueError):
            tsc.cycles_at(-1)
        with pytest.raises(ValueError):
            tsc.ns_of(-1)


class TestTimestampLog:
    def test_stamp_and_render(self):
        log = TimestampLog()
        log.stamp("job-begin tau1#0", 1_000)
        log.stamp("job-end tau1#0", 30_000)
        assert len(log) == 2
        lines = log.render().splitlines()
        assert lines[0] == "job-begin tau1#0 2000 1000"
        assert lines[1] == "job-end tau1#0 60000 30000"

    def test_in_memory_until_render(self):
        # The paper buffers in StringBuffers to avoid I/O during the
        # run; the log mirrors that: stamping never renders.
        log = TimestampLog()
        for i in range(100):
            log.stamp(f"e{i}", i)
        assert len(log.samples) == 100
