"""Bit-equivalence of the vectorized population stepper.

The contract of :mod:`repro.sim.batch` is that for every system the
classifier admits, :func:`simulate_batch` produces the *same* job
records — and therefore the same fingerprint — as the exact engine run
one system at a time.  This suite pins that over hundreds of generated
systems plus hand-built stress cases (offsets beyond the horizon,
permanent overload, completion exactly at a deadline or release), and
— since the stepper models the paper's core workload — over injected
cost deviations under every supported treatment (detect-only,
immediate stop, equitable allowance).
"""

import pytest

from repro.core.detection import Rounding, RoundingMode
from repro.core.faults import (
    CostOverrun,
    CostUnderrun,
    FaultInjector,
    NoFaults,
    RandomFaults,
)
from repro.core.task import Task, TaskSet
from repro.core.treatments import TreatmentKind, plan_treatment
from repro.exec.sim import run_simulation
from repro.rng import derive_rng
from repro.sim.batch import (
    _trivial_faults,
    classify,
    schedule_fingerprint,
    sim_job_records,
    simulate_batch,
)
from repro.sim.vm import ConstantOverhead, VMProfile
from repro.workloads.population import PopulationConfig, generate_population

#: The treatment kinds the vectorized stepper models (None = untreated).
SUPPORTED_TREATMENTS = (
    None,
    TreatmentKind.DETECT_ONLY,
    TreatmentKind.IMMEDIATE_STOP,
    TreatmentKind.EQUITABLE_ALLOWANCE,
)


def exact_records(ts: TaskSet, horizon: int, faults=None, treatment=None):
    return sim_job_records(
        run_simulation(ts, horizon=horizon, faults=faults, treatment=treatment)
    )


def batched_one(ts: TaskSet, horizon: int, faults=None, treatment=None):
    """One system through the batched route exactly as ``build_chunk``
    drives it: plan the treatment (admission gate included), then step."""
    plan = None
    if treatment is not None and treatment.installs_detectors:
        plan = plan_treatment(ts, treatment)
    (b,) = simulate_batch([ts], [horizon], faults=[faults], plans=[plan])
    return b


def assert_parity(ts: TaskSet, horizon: int, faults=None, treatment=None):
    """Records, fingerprint and every counter equal between routes."""
    b = batched_one(ts, horizon, faults, treatment)
    result = run_simulation(ts, horizon=horizon, faults=faults, treatment=treatment)
    exact = sim_job_records(result)
    assert b.records == exact
    assert schedule_fingerprint(b) == schedule_fingerprint(result)
    assert b.released == len(exact)
    assert b.completed == sum(1 for r in exact if r[3] >= 0 and not r[5])
    assert b.misses == sum(1 for r in exact if r[4])
    assert b.stopped == sum(1 for r in exact if r[5])
    assert b.detections == sum(1 for r in exact if r[6])
    costs = {t.name: t.cost for t in ts}
    faulty = (
        {
            name
            for name, k, *_ in exact
            if faults.demand(name, k, costs[name]) > costs[name]
        }
        if faults is not None
        else set()
    )
    failed = {r[0] for r in exact if r[4] or r[5]}
    assert b.failed_task_count == len(failed)
    assert b.collateral_task_count == len(failed - faulty)
    return b


def small_periods(**overrides) -> PopulationConfig:
    """Population knobs scaled down so the exact engine stays fast."""
    defaults = dict(period_lo=20, period_hi=400, period_granularity=1)
    defaults.update(overrides)
    return PopulationConfig(**defaults)


def stress_systems() -> list[tuple[TaskSet, int]]:
    """Hand-built (system, horizon) pairs covering the edge geometry."""
    return [
        # Offset beyond the horizon: zero released jobs.
        (TaskSet([Task("only", cost=2, period=380, deadline=120, offset=1088, priority=1)]), 320),
        # One task with zero jobs, one with many.
        (
            TaskSet(
                [
                    Task("late", cost=5, period=100, deadline=80, offset=900, priority=2),
                    Task("busy", cost=3, period=10, deadline=10, priority=1),
                ]
            ),
            200,
        ),
        # Permanent overload (cost == period): every deadline in range misses.
        (TaskSet([Task("full", cost=50, period=50, deadline=30, priority=1)]), 300),
        # Completion exactly at the deadline (meets it) and at a release.
        (TaskSet([Task("edge", cost=10, period=10, deadline=10, priority=1)]), 100),
        # Two tasks, completion of hi coincides with release of lo.
        (
            TaskSet(
                [
                    Task("hi", cost=4, period=8, deadline=8, priority=10),
                    Task("lo", cost=3, period=12, deadline=12, offset=4, priority=5),
                ]
            ),
            96,
        ),
        # Horizon shorter than every period: at most the initial jobs.
        (
            TaskSet(
                [
                    Task("a", cost=2, period=70, deadline=9, priority=3),
                    Task("b", cost=9, period=90, deadline=60, offset=5, priority=2),
                ]
            ),
            50,
        ),
        # Backlogged task (deadline > period would be unusual, keep
        # constrained but overloaded pair instead).
        (
            TaskSet(
                [
                    Task("p", cost=7, period=10, deadline=10, priority=9),
                    Task("q", cost=8, period=15, deadline=15, priority=4),
                ]
            ),
            150,
        ),
    ]


class TestEquivalence:
    def test_generated_population_bit_identical(self):
        """200+ generated systems across three cells: records, counters
        and fingerprints all equal the exact engine's."""
        systems: list[TaskSet] = []
        for cell, (u, n) in enumerate([(0.5, 3), (0.75, 4), (0.97, 5)]):
            systems.extend(
                generate_population(
                    70,
                    small_periods(n=n, utilization=u, deadline_factor=0.9),
                    seed=5150,
                    key=("eqcell", cell),
                )
            )
        assert len(systems) == 210
        horizons = [4 * max(t.period for t in ts) for ts in systems]
        batch = simulate_batch(systems, horizons)
        misses_seen = 0
        for ts, h, b in zip(systems, horizons, batch):
            result = run_simulation(ts, horizon=h)
            exact = sim_job_records(result)
            assert b.records == exact
            assert schedule_fingerprint(b) == schedule_fingerprint(result)
            assert b.horizon == h
            assert b.released == len(exact)
            assert b.completed == sum(1 for r in exact if r[3] >= 0)
            assert b.misses == sum(1 for r in exact if r[4])
            assert b.failed_task_count == len({r[0] for r in exact if r[4]})
            misses_seen += b.misses
        # The U=0.97 cell guarantees the suite exercises misses.
        assert misses_seen > 0

    @pytest.mark.parametrize(
        "ts,horizon", stress_systems(), ids=lambda v: v if isinstance(v, int) else None
    )
    def test_stress_geometry(self, ts, horizon):
        (b,) = simulate_batch([ts], [horizon])
        exact = exact_records(ts, horizon)
        assert b.records == exact
        assert b.released == len(exact)
        assert b.completed == sum(1 for r in exact if r[3] >= 0)
        assert b.misses == sum(1 for r in exact if r[4])
        assert b.failed_task_count == len({r[0] for r in exact if r[4]})

    def test_zero_job_system_counters(self):
        """A system whose only task releases nothing must report all
        zeros — the empty-segment case of the counter aggregation."""
        ts = TaskSet([Task("t", cost=1, period=10, deadline=10, offset=999, priority=1)])
        (b,) = simulate_batch([ts], [100])
        assert b.records == ()
        assert (b.released, b.completed, b.misses, b.failed_task_count) == (0, 0, 0, 0)
        assert (b.stopped, b.detections, b.collateral_task_count) == (0, 0, 0)

    def test_bucketed_run_matches_single_systems(self):
        """More systems than one bucket (grouped by event count
        internally) return results in input order, equal to running
        each system alone."""
        systems = generate_population(
            600, small_periods(n=2, utilization=0.6), seed=99, key=("bucket",)
        )
        horizons = [2 * max(t.period for t in ts) for ts in systems]
        together = simulate_batch(systems, horizons)
        assert len(together) == 600
        for probe in (0, 17, 299, 511, 512, 599):
            (alone,) = simulate_batch([systems[probe]], [horizons[probe]])
            assert together[probe] == alone


class TestFaultTreatmentEquivalence:
    """The paper's core workload on the vectorized stepper: injected
    cost deviations under each supported treatment, bit-identical to
    the exact engine."""

    def _fault_model(self, ts: TaskSet, i: int, seed: int):
        """Alternate between the two supported fault families, both
        drawn from ``derive_rng`` streams so every schedule is random
        yet replayable from (seed, i) alone."""
        min_period = min(t.period for t in ts)
        if i % 3 == 0:
            return RandomFaults(
                rate=0.6, max_extra=min_period, seed=derive_rng(seed, "rf", i).randrange(2**31)
            )
        rng = derive_rng(seed, "schedule", i)
        deviations = []
        for task in ts:
            for _ in range(rng.randrange(0, 3)):
                job = rng.randrange(0, 12)
                if rng.random() < 0.8:
                    deviations.append(CostOverrun(task.name, job, rng.randrange(1, min_period)))
                elif task.cost > 1:
                    deviations.append(CostUnderrun(task.name, job, rng.randrange(1, task.cost)))
        return FaultInjector(deviations)

    def test_fault_treatment_corpus_bit_identical(self):
        """200+ feasible systems with random fault schedules, cycling
        through every supported treatment: records, fingerprints and
        miss/stop/detection/collateral counters all equal the exact
        engine's, and the corpus provably exercises stops, detections
        and collateral damage."""
        systems: list[TaskSet] = []
        for cell, (u, n) in enumerate([(0.5, 3), (0.65, 4), (0.75, 5)]):
            systems.extend(
                generate_population(
                    70,
                    small_periods(n=n, utilization=u, deadline_factor=0.95),
                    seed=777,
                    key=("fteq", cell),
                    feasible_only=True,
                )
            )
        assert len(systems) == 210
        totals = {"stopped": 0, "detections": 0, "misses": 0, "collateral": 0}
        for i, ts in enumerate(systems):
            horizon = 3 * max(t.period for t in ts)
            faults = self._fault_model(ts, i, seed=777)
            treatment = SUPPORTED_TREATMENTS[i % len(SUPPORTED_TREATMENTS)]
            assert classify(ts, faults=faults, treatment=treatment, horizon=horizon) is None
            b = assert_parity(ts, horizon, faults, treatment)
            totals["stopped"] += b.stopped
            totals["detections"] += b.detections
            totals["misses"] += b.misses
            totals["collateral"] += b.collateral_task_count
        # The corpus must actually exercise the treated code paths.
        assert all(v > 0 for v in totals.values()), totals

    def test_batched_sweep_sized_run_matches_exact(self):
        """Faulted + treated systems through one big simulate_batch
        call (bucketing included) equal per-system exact runs."""
        systems = generate_population(
            60,
            small_periods(n=3, utilization=0.6, deadline_factor=0.95),
            seed=31,
            key=("ftbatch",),
            feasible_only=True,
        )
        horizons = [3 * max(t.period for t in ts) for ts in systems]
        faults = [self._fault_model(ts, i, seed=31) for i, ts in enumerate(systems)]
        kinds = [SUPPORTED_TREATMENTS[i % 4] for i in range(len(systems))]
        plans = [
            plan_treatment(ts, k) if k is not None and k.installs_detectors else None
            for ts, k in zip(systems, kinds)
        ]
        batch = simulate_batch(systems, horizons, faults=faults, plans=plans)
        for ts, h, fm, k, b in zip(systems, horizons, faults, kinds, batch):
            assert b.records == exact_records(ts, h, fm, k)

    def test_detector_completion_tie_is_not_a_stop(self):
        """A job completing exactly at its detector instant completes:
        COMPLETION outranks DETECTOR in the engine, and the stepper
        applies completions first within an instant."""
        ts = TaskSet([Task("a", cost=2, period=10, deadline=10, priority=1)])
        b = assert_parity(ts, 100, None, TreatmentKind.IMMEDIATE_STOP)
        assert b.stopped == 0 and b.detections == 0

    def test_overrun_is_stopped_at_detector(self):
        """An overrunning job is cut at release + WCRT, detected, and
        — having ended before its deadline — does not miss."""
        ts = TaskSet([Task("a", cost=2, period=10, deadline=10, priority=1)])
        faults = FaultInjector([CostOverrun("a", 3, 7)])
        b = assert_parity(ts, 100, faults, TreatmentKind.IMMEDIATE_STOP)
        assert b.stopped == 1 and b.detections == 1 and b.misses == 0

    def test_detect_only_flags_without_stopping(self):
        ts = TaskSet(
            [
                Task("hi", cost=2, period=10, deadline=10, priority=9),
                Task("lo", cost=3, period=15, deadline=15, priority=1),
            ]
        )
        faults = FaultInjector([CostOverrun("hi", 1, 6)])
        b = assert_parity(ts, 90, faults, TreatmentKind.DETECT_ONLY)
        assert b.stopped == 0 and b.detections > 0

    def test_underrun_under_treatment(self):
        """Early completions never trip a detector."""
        ts = TaskSet([Task("a", cost=5, period=10, deadline=10, priority=1)])
        faults = FaultInjector([CostUnderrun("a", k, 3) for k in range(5)])
        b = assert_parity(ts, 100, faults, TreatmentKind.IMMEDIATE_STOP)
        assert b.stopped == 0 and b.detections == 0

    def test_collateral_damage_under_immediate_stop(self):
        """An overrunning mid-priority job runs until its detector at
        the *worst-case* response time; in windows with less than
        worst-case interference that grants it real extra CPU, budget
        the low task's analysis never accounted for — the classic
        collateral scenario of §4.1."""
        ts = TaskSet(
            [
                Task("a", cost=2, period=10, deadline=10, priority=9),
                Task("b", cost=3, period=15, deadline=15, priority=5),
                Task("c", cost=5, period=18, deadline=14, priority=1),
            ]
        )
        faults = FaultInjector([CostOverrun("b", k, 9) for k in range(12)])
        b = assert_parity(ts, 120, faults, TreatmentKind.IMMEDIATE_STOP)
        assert b.stopped > 0
        assert b.collateral_task_count >= 1

    def test_deviation_beyond_horizon_is_inert(self):
        """A deviation targeting a job released after the horizon
        changes nothing — on either route."""
        ts = TaskSet([Task("a", cost=2, period=10, deadline=10, priority=1)])
        faults = FaultInjector([CostOverrun("a", 50, 9)])
        b = assert_parity(ts, 100, faults, TreatmentKind.IMMEDIATE_STOP)
        clean = batched_one(ts, 100, None, TreatmentKind.IMMEDIATE_STOP)
        assert b.records == clean.records

    def test_equitable_allowance_detects_later_than_immediate(self):
        """The §4.2 detectors fire at the allowance-adjusted WCRT, so a
        moderate overrun that the hard stop would cut survives."""
        ts = TaskSet(
            [
                Task("hi", cost=2, period=20, deadline=20, priority=9),
                Task("lo", cost=4, period=30, deadline=30, priority=1),
            ]
        )
        faults = FaultInjector([CostOverrun("hi", k, 2) for k in range(8)])
        hard = assert_parity(ts, 180, faults, TreatmentKind.IMMEDIATE_STOP)
        soft = assert_parity(ts, 180, faults, TreatmentKind.EQUITABLE_ALLOWANCE)
        assert soft.stopped <= hard.stopped
        assert soft.collateral_task_count == 0


class TestClassify:
    def clean(self) -> TaskSet:
        return TaskSet(
            [
                Task("a", cost=1, period=10, priority=2),
                Task("b", cost=2, period=20, priority=1),
            ]
        )

    def test_plain_system_is_eligible(self):
        assert classify(self.clean()) is None

    def test_trivial_fault_models_are_eligible(self):
        assert classify(self.clean(), faults=NoFaults()) is None
        assert classify(self.clean(), faults=FaultInjector([])) is None
        assert classify(self.clean(), faults=RandomFaults(rate=0.0, max_extra=5, seed=1)) is None

    def test_real_faults_are_eligible(self):
        """The paper's fault models vectorize now (ISSUE 9 tentpole)."""
        faults = FaultInjector([CostOverrun("a", 0, 5)])
        assert classify(self.clean(), faults=faults) is None
        rnd = RandomFaults(rate=0.5, max_extra=5, seed=1)
        assert classify(self.clean(), faults=rnd) is None

    def test_opaque_fault_model_rejected(self):
        class MeteredFaults:
            def demand(self, task_name, job, base_cost):
                return base_cost

        assert classify(self.clean(), faults=MeteredFaults()) == "opaque-fault-model"

    def test_supported_treatments_are_eligible(self):
        for kind in (
            TreatmentKind.NO_DETECTION,
            TreatmentKind.DETECT_ONLY,
            TreatmentKind.IMMEDIATE_STOP,
            TreatmentKind.EQUITABLE_ALLOWANCE,
        ):
            assert classify(self.clean(), treatment=kind) is None

    def test_system_allowance_stays_exact(self):
        assert (
            classify(self.clean(), treatment=TreatmentKind.SYSTEM_ALLOWANCE)
            == "system-allowance"
        )

    def test_vm_overheads_reject_treatments(self):
        firing = VMProfile(name="fire", detector_fire_cost=1)
        assert (
            classify(self.clean(), treatment=TreatmentKind.DETECT_ONLY, vm=firing)
            == "detector-fire-cost"
        )
        polling = VMProfile(name="poll", stop_poll_overhead=ConstantOverhead(2))
        assert (
            classify(self.clean(), treatment=TreatmentKind.IMMEDIATE_STOP, vm=polling)
            == "stop-poll-overhead"
        )
        # Detect-only never stops, so the poll overhead is irrelevant.
        assert classify(self.clean(), treatment=TreatmentKind.DETECT_ONLY, vm=polling) is None

    def test_down_rounding_rejects_treatments(self):
        vm = VMProfile(name="down", timer_rounding=Rounding(RoundingMode.DOWN, 100))
        assert (
            classify(self.clean(), treatment=TreatmentKind.IMMEDIATE_STOP, vm=vm)
            == "rounding-can-zero-detectors"
        )
        # Round-up timers (the jRate quirk) keep offsets positive.
        up = VMProfile(name="up", timer_rounding=Rounding(RoundingMode.UP, 100))
        assert classify(self.clean(), treatment=TreatmentKind.DETECT_ONLY, vm=up) is None

    def test_context_switch_rejected(self):
        vm = VMProfile(name="slow", context_switch=3)
        assert "context-switch" in classify(self.clean(), vm=vm)

    def test_arrivals_and_sections_rejected(self):
        assert "arrival" in classify(self.clean(), arrivals={"a": (0, 5)})
        assert "section" in classify(self.clean(), sections=[object()])

    def test_duplicate_priorities_rejected(self):
        ts = TaskSet(
            [
                Task("a", cost=1, period=10, priority=1),
                Task("b", cost=2, period=20, priority=1),
            ]
        )
        assert "priorities" in classify(ts)

    def test_simulate_batch_refuses_what_classify_rejects(self):
        ts = TaskSet(
            [
                Task("a", cost=1, period=10, priority=1),
                Task("b", cost=2, period=20, priority=1),
            ]
        )
        with pytest.raises(ValueError, match="classify"):
            simulate_batch([ts], [100])

    def test_simulate_batch_refuses_opaque_faults_and_system_allowance(self):
        ts = self.clean()

        class MeteredFaults:
            def demand(self, task_name, job, base_cost):
                return base_cost

        with pytest.raises(ValueError, match="classify"):
            simulate_batch([ts], [100], faults=[MeteredFaults()])
        plan = plan_treatment(ts, TreatmentKind.SYSTEM_ALLOWANCE)
        with pytest.raises(ValueError, match="classify"):
            simulate_batch([ts], [100], plans=[plan])


class TestTrivialFaults:
    """Horizon-aware triviality of FaultInjector schedules (ISSUE 9
    satellite): deviations aimed past the sweep horizon are inert."""

    def taskset(self) -> TaskSet:
        return TaskSet(
            [
                Task("a", cost=1, period=10, priority=2),
                Task("b", cost=2, period=20, offset=5, priority=1),
            ]
        )

    def test_beyond_horizon_deviations_are_trivial(self):
        # a#12 releases at 120, b#6 at 125 — both after horizon 100.
        faults = FaultInjector(
            [CostOverrun("a", 12, 5), CostOverrun("b", 6, 5)]
        )
        assert _trivial_faults(faults, self.taskset(), 100)
        assert classify(self.taskset(), faults=faults, horizon=100) is None

    def test_in_horizon_deviation_is_not_trivial(self):
        faults = FaultInjector([CostOverrun("a", 12, 5)])
        assert not _trivial_faults(faults, self.taskset(), 120)

    def test_unknown_task_deviation_is_trivial(self):
        faults = FaultInjector([CostOverrun("ghost", 0, 5)])
        assert _trivial_faults(faults, self.taskset(), 100)

    def test_without_horizon_stays_conservative(self):
        faults = FaultInjector([CostOverrun("a", 12, 5)])
        assert not _trivial_faults(faults)
        assert not _trivial_faults(faults, self.taskset(), None)


class TestValidation:
    def test_length_mismatch(self):
        ts = TaskSet([Task("t", cost=1, period=10, priority=1)])
        with pytest.raises(ValueError, match="one horizon per system"):
            simulate_batch([ts], [100, 200])

    def test_faults_plans_mismatch(self):
        ts = TaskSet([Task("t", cost=1, period=10, priority=1)])
        with pytest.raises(ValueError, match="align"):
            simulate_batch([ts], [100], faults=[None, None])
        with pytest.raises(ValueError, match="align"):
            simulate_batch([ts], [100], plans=[])

    def test_nonpositive_horizon(self):
        ts = TaskSet([Task("t", cost=1, period=10, priority=1)])
        with pytest.raises(ValueError, match="horizon"):
            simulate_batch([ts], [0])

    def test_empty_batch(self):
        assert simulate_batch([], []) == []
