"""Project model extraction: bindings, call graph, reachability."""

from repro.analysis.flow import build_model
from repro.analysis.flow.model import content_hash


FIXTURE = {
    "core.py": """
        class Engine:
            def run(self):
                return self.step()

            def step(self):
                return helper(1)


        def helper(x):
            return leaf(x)


        def leaf(x):
            return x + 1


        def orphan():
            return 0
    """,
    "client.py": """
        from pkg.core import Engine, helper


        def entry():
            e = Engine()
            return e.run() + helper(2)


        def untracked(e):
            return e.run()
    """,
}


class TestCallGraph:
    def test_golden_edges(self, write_package):
        root = write_package(FIXTURE)
        model = build_model([root])
        graph = model.call_graph()
        assert graph["pkg.core.Engine.run"] == ("pkg.core.Engine.step",)
        assert graph["pkg.core.Engine.step"] == ("pkg.core.helper",)
        assert graph["pkg.core.helper"] == ("pkg.core.leaf",)
        assert graph["pkg.core.leaf"] == ()
        # Cross-module: ctor-typed local + from-imported function.
        assert graph["pkg.client.entry"] == (
            "pkg.core.Engine.run",
            "pkg.core.helper",
        )
        # No type for the parameter: no edge, not a wrong edge.
        assert graph["pkg.client.untracked"] == ()

    def test_reachability_is_transitive_and_pattern_rooted(self, write_package):
        root = write_package(FIXTURE)
        model = build_model([root])
        reached = model.reachable_from(["*.core.Engine.run"])
        assert reached == {
            "pkg.core.Engine.run",
            "pkg.core.Engine.step",
            "pkg.core.helper",
            "pkg.core.leaf",
        }
        assert "pkg.core.orphan" not in reached

    def test_module_inventory(self, write_package):
        root = write_package(FIXTURE)
        model = build_model([root])
        assert set(model.modules) == {"pkg", "pkg.core", "pkg.client"}
        summary = model.modules["pkg.client"]
        assert summary.bindings["Engine"] == "pkg.core.Engine"
        assert summary.bindings["helper"] == "pkg.core.helper"


class TestAnnotationTyping:
    def test_param_annotation_resolves_method_calls(self, write_package):
        root = write_package(
            {
                "core.py": FIXTURE["core.py"],
                "typed.py": """
                    from pkg.core import Engine


                    def drive(e: Engine):
                        return e.run()


                    def drive_opt(e: Engine | None):
                        return e.run()


                    def drive_str(e: "Engine"):
                        return e.run()
                """,
            }
        )
        graph = build_model([root]).call_graph()
        for fqn in ("pkg.typed.drive", "pkg.typed.drive_opt", "pkg.typed.drive_str"):
            assert graph[fqn] == ("pkg.core.Engine.run",), fqn


class TestRobustness:
    def test_parse_error_is_recorded_not_raised(self, write_package):
        root = write_package({"broken.py": "def broken(:\n    pass\n"})
        model = build_model([root])
        assert model.modules["pkg.broken"].parse_error is not None

    def test_content_hash_is_stable_and_content_addressed(self):
        assert content_hash(b"x") == content_hash(b"x")
        assert content_hash(b"x") != content_hash(b"y")
        assert len(content_hash(b"")) == 8
