"""RT004 — frozen dataclasses stay frozen.

``Task``, ``VMProfile``, ``CostOverrun`` … are ``frozen=True`` on
purpose: analysis results are cached and shared, and the simulator
assumes a task's parameters cannot drift mid-run.  Python still offers
two escape hatches this rule closes:

* ``object.__setattr__(obj, ...)`` anywhere outside the class's own
  ``__post_init__`` (the sanctioned spot for derived-field defaults,
  e.g. ``deadline = period``);
* plain ``self.attr = ...`` inside methods of a frozen dataclass —
  that one even *raises* at runtime, but only when the method finally
  executes; the linter catches it at check time.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Rule, register

__all__ = ["FrozenMutation"]

#: Methods in which ``object.__setattr__`` on ``self`` is legitimate.
_ALLOWED_METHODS = frozenset({"__post_init__", "__init__", "__new__", "__setstate__"})


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            func = deco.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if name == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


@register
class FrozenMutation(Rule):
    """RT004: mutation of frozen task/event dataclasses."""

    code = "RT004"
    name = "frozen-mutation"
    description = (
        "object.__setattr__ outside __post_init__, or self.attr assignment "
        "in a frozen dataclass method, defeats the immutability the "
        "analysis caches rely on."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._func_stack: list[str] = []
        self._frozen_stack: list[bool] = []

    # -- scope tracking ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._frozen_stack.append(_is_frozen_dataclass(node))
        self.generic_visit(node)
        self._frozen_stack.pop()

    def _visit_function(self, node) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- findings ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            current = self._func_stack[-1] if self._func_stack else None
            if current not in _ALLOWED_METHODS:
                self.report(
                    node,
                    "object.__setattr__ outside __post_init__ mutates a "
                    "frozen dataclass",
                    hint="build a new instance (dataclasses.replace) instead",
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_self_assignment(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_self_assignment([node.target], node)
        self.generic_visit(node)

    def _check_self_assignment(self, targets, node) -> None:
        if not (self._frozen_stack and self._frozen_stack[-1]):
            return
        current = self._func_stack[-1] if self._func_stack else None
        if current in _ALLOWED_METHODS or current is None:
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.report(
                    node,
                    f"assignment to self.{target.attr} in a frozen "
                    f"dataclass method will raise FrozenInstanceError",
                    hint="return a new instance (dataclasses.replace) instead",
                )
