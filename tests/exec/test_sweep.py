"""Sweep layer contracts: frozen identity, chunking, route parity.

The promises under test, in the order a sweep makes them:

* a :class:`SweepSpec` has a stable content hash that moves exactly
  when the definition moves;
* expansion into chunk specs is deterministic and the chunk size never
  changes which *points* come out (only how they are grouped);
* serial, pooled, batched and exact runs of the same sweep agree point
  for point and manifest fingerprint for manifest fingerprint;
* a re-run against the same cache recomputes nothing.
"""

import dataclasses

import pytest

from repro.exec.cache import ResultCache
from repro.exec.executor import LocalExecutor, PoolExecutor
from repro.exec.sweep import (
    SweepSpec,
    build_chunk,
    chunk_specs,
    run_sweep,
    summarize_cells,
)


def small_sweep(**overrides) -> SweepSpec:
    kwargs = dict(
        name="unit-sweep",
        axes={"utilization": (0.5, 0.9), "n": (2, 3)},
        replicates=6,
        base_seed=404,
        deadline_factor=0.9,
        period_lo=50,
        period_hi=5_000,
        period_granularity=10,
        horizon_periods=2,
        chunk_size=5,
    )
    kwargs.update(overrides)
    return SweepSpec.make(**kwargs)


class TestSweepSpec:
    def test_hash_is_stable_across_instances(self):
        assert small_sweep().sweep_hash() == small_sweep().sweep_hash()

    def test_hash_moves_with_the_definition(self):
        base = small_sweep().sweep_hash()
        assert small_sweep(base_seed=405).sweep_hash() != base
        assert small_sweep(replicates=7).sweep_hash() != base
        assert small_sweep(axes={"utilization": (0.5,)}).sweep_hash() != base

    def test_round_trips_through_params(self):
        sweep = small_sweep()
        assert SweepSpec.from_params(sweep.to_params().items()) == sweep

    def test_cells_follow_axis_declaration_order(self):
        sweep = small_sweep()
        assert sweep.cells[0] == (("utilization", 0.5), ("n", 2))
        assert sweep.cells[-1] == (("utilization", 0.9), ("n", 3))
        assert sweep.total_points == 4 * 6

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"name": ""}, "name"),
            ({"axes": {"bogus": (1,)}}, "unknown sweep axis"),
            ({"axes": {"n": ()}}, "at least one value"),
            ({"replicates": 0}, "replicates"),
            ({"chunk_size": 0}, "chunk_size"),
            ({"horizon_periods": 0}, "horizon_periods"),
        ],
    )
    def test_validation(self, kwargs, match):
        base = dict(name="s", axes={"n": (2,)})
        base.update(kwargs)
        with pytest.raises(ValueError, match=match):
            SweepSpec.make(**base)

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(name="s", axes=(("n", (2,)), ("n", (3,))))


class TestChunking:
    def test_chunk_specs_cover_the_sweep_exactly(self):
        sweep = small_sweep()  # 24 points, chunk 5 -> 5 chunks
        specs = chunk_specs(sweep)
        assert len(specs) == 5
        spans = [(s.param("start"), s.param("count")) for s in specs]
        assert spans == [(0, 5), (5, 5), (10, 5), (15, 5), (20, 4)]
        assert all(s.builder == "sweep.chunk" for s in specs)

    def test_chunk_size_does_not_change_the_points(self):
        """Same sweep, different chunking: the manifest differs (it
        covers the chunk structure) but every point is identical."""
        a = run_sweep(small_sweep(chunk_size=5), executor=LocalExecutor())
        b = run_sweep(small_sweep(chunk_size=24), executor=LocalExecutor())
        assert a.points == b.points

    def test_points_are_ordinal_ordered(self):
        result = run_sweep(small_sweep(), executor=LocalExecutor())
        assert [p.ordinal for p in result.points] == list(range(24))


class TestRouteParity:
    def test_serial_pool_and_stepper_agree(self):
        sweep = small_sweep()
        serial = run_sweep(sweep, executor=LocalExecutor())
        pooled = run_sweep(sweep, executor=PoolExecutor(2))
        exact = run_sweep(sweep, executor=LocalExecutor(), stepper="exact")
        assert serial.points == pooled.points == exact.points
        assert (
            serial.fingerprint() == pooled.fingerprint() == exact.fingerprint()
        )

    def test_counters_match_between_steppers(self):
        """The stepper's array-side counters equal the record-side
        summary — including on a hot cell that actually misses."""
        sweep = small_sweep(axes={"utilization": (0.98,)}, replicates=12, n=4)
        batched = run_sweep(sweep, executor=LocalExecutor()).points
        exact = run_sweep(sweep, executor=LocalExecutor(), stepper="exact").points
        assert batched == exact
        assert sum(p.misses for p in batched) > 0

    def test_unknown_stepper_rejected(self):
        (spec,) = chunk_specs(small_sweep(chunk_size=24))
        with pytest.raises(ValueError, match="stepper"):
            build_chunk(spec, stepper="quantum")


class TestResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        sweep = small_sweep()
        first = LocalExecutor(ResultCache(tmp_path))
        cold = run_sweep(sweep, executor=first)
        second = LocalExecutor(ResultCache(tmp_path))
        warm = run_sweep(sweep, executor=second)
        assert second.stats.cache_hits == len(chunk_specs(sweep))
        assert second.stats.computed == 0
        assert warm.points == cold.points
        assert warm.fingerprint() == cold.fingerprint()

    def test_partial_cache_recomputes_only_missing_chunks(self, tmp_path):
        sweep = small_sweep()
        specs = chunk_specs(sweep)
        # Warm the cache with the first three chunks only.
        LocalExecutor(ResultCache(tmp_path)).run(specs[:3], build_chunk)
        ex = LocalExecutor(ResultCache(tmp_path))
        result = run_sweep(sweep, executor=ex)
        assert ex.stats.cache_hits == 3
        assert ex.stats.computed == len(specs) - 3
        assert len(result.points) == sweep.total_points

    def test_definition_change_misses_the_cache(self, tmp_path):
        LocalExecutor(ResultCache(tmp_path)).run(
            chunk_specs(small_sweep()), build_chunk
        )
        ex = LocalExecutor(ResultCache(tmp_path))
        run_sweep(small_sweep(base_seed=405), executor=ex)
        assert ex.stats.cache_hits == 0


class TestSummaries:
    def test_summarize_cells_one_line_per_cell(self):
        result = run_sweep(small_sweep(), executor=LocalExecutor())
        lines = summarize_cells(result.points)
        assert len(lines) == 4
        assert all("systems=6" in line for line in lines)

    def test_feasible_only_sweep_reports_full_feasibility(self):
        sweep = small_sweep(
            axes={"utilization": (0.6,)}, replicates=8, feasible_only=True
        )
        result = run_sweep(sweep, executor=LocalExecutor())
        assert all(p.analysis_feasible for p in result.points)

    def test_fault_sweep_points_are_eligible_and_stepper_independent(self):
        """Fault cells vectorize now (ISSUE 9): every point is
        classifier-eligible and the batched and exact routes agree
        point for point and fingerprint for fingerprint."""
        sweep = small_sweep(
            axes={"fault_rate": (0.0, 0.5)}, replicates=4, fault_scale=1.0, horizon_periods=2
        )
        batched = run_sweep(sweep, executor=LocalExecutor())
        exact = run_sweep(sweep, executor=LocalExecutor(), stepper="exact")
        assert all(p.eligible for p in batched.points)
        assert batched.points == exact.points
        assert batched.fingerprint() == exact.fingerprint()
        faulted = [p for p in batched.points if dict(p.cell)["fault_rate"] == 0.5]
        assert sum(p.misses for p in faulted) > 0

    def test_treated_fault_sweep_routes_batched_with_parity(self):
        """The paper's core workload — faults + stopping treatment —
        through both routes: identical points, and the treatment
        actually stops jobs somewhere in the grid."""
        sweep = small_sweep(
            axes={
                "fault_rate": (0.4,),
                "treatment": ("immediate-stop", "equitable-allowance", "detect-only"),
            },
            replicates=4,
            fault_scale=1.0,
            horizon_periods=2,
            feasible_only=True,
            utilization=0.6,
            n=3,
        )
        batched = run_sweep(sweep, executor=LocalExecutor())
        exact = run_sweep(sweep, executor=LocalExecutor(), stepper="exact")
        assert all(p.eligible for p in batched.points)
        assert batched.points == exact.points
        assert batched.fingerprint() == exact.fingerprint()
        assert sum(p.detections for p in batched.points) > 0
