"""Population exhibits: claims, registry wiring, named sweeps."""

import pytest

from repro.exec.spec import ExperimentSpec
from repro.experiments.population import (
    SWEEPS,
    build_population_faults,
    build_population_landscape,
    population_faults_spec,
    population_landscape_spec,
    sweep_by_name,
)
from repro.experiments.registry import BUILDERS, all_specs, build_exhibit


class TestNamedSweeps:
    def test_known_names_resolve(self):
        for name in SWEEPS:
            sweep = sweep_by_name(name)
            assert sweep.name == name
            assert sweep.total_points > 0

    def test_unknown_name_lists_the_known(self):
        with pytest.raises(ValueError, match="landscape"):
            sweep_by_name("nope")

    def test_smoke_sweep_sized_for_ci(self):
        smoke = sweep_by_name("landscape-smoke")
        assert smoke.total_points == 504
        assert smoke.total_points % smoke.chunk_size == 0


class TestLandscapeExhibit:
    @pytest.fixture(scope="class")
    def exhibit(self):
        return build_population_landscape(population_landscape_spec())

    def test_every_claim_holds(self, exhibit):
        for claim in exhibit.claims():
            assert claim.holds, claim.description

    def test_render_covers_the_grid(self, exhibit):
        table = exhibit.render()
        assert "landscape" in table
        for u in (0.65, 0.8, 0.95):
            assert str(u) in table

    def test_point_count(self, exhibit):
        spec = population_landscape_spec()
        cells = len(spec.param("utilizations")) * len(spec.param("ns"))
        assert len(exhibit.points) == cells * spec.param("replicates")


class TestFaultsExhibit:
    @pytest.fixture(scope="class")
    def exhibit(self):
        return build_population_faults(population_faults_spec())

    def test_every_claim_holds(self, exhibit):
        for claim in exhibit.claims():
            assert claim.holds, claim.description

    def test_paired_workloads_differ_only_in_treatment(self, exhibit):
        """Cells at the same fault rate draw identical systems, so the
        treatment comparison is paired: released-job totals match."""
        by_cell = {}
        for p in exhibit.points:
            by_cell.setdefault(p.cell, []).append(p.released)
        for rate in (0.0, 0.25, 0.5):
            per_treatment = {
                dict(cell)["treatment"]: released
                for cell, released in by_cell.items()
                if dict(cell)["fault_rate"] == rate
            }
            assert len(set(tuple(v) for v in per_treatment.values())) == 1

    def test_faults_actually_injected(self, exhibit):
        assert sum(p.detections for p in exhibit.points) > 0


class TestRegistry:
    def test_population_builders_registered(self):
        assert "population.landscape" in BUILDERS
        assert "population.faults" in BUILDERS
        assert "sweep.chunk" in BUILDERS

    def test_population_specs_in_all_specs(self):
        names = {s.name for s in all_specs()}
        assert "population-landscape" in names
        assert "population-fault-treatments" in names

    def test_build_exhibit_dispatches(self):
        exhibit = build_exhibit(population_landscape_spec())
        assert exhibit.points

    def test_unknown_builder_rejected(self):
        spec = ExperimentSpec.make(name="x", builder="population.bogus", params={})
        with pytest.raises(ValueError, match="unknown builder"):
            build_exhibit(spec)
