"""Metrics registry: counters, gauges and integer-ns histograms.

Where the paper reads worst-case response times and missed deadlines
off its charts (Figures 3–7), long-horizon batch runs need the same
quantities as durable, queryable numbers: per-task response-time
*distributions*, miss/stop/preemption counters, detector-fire
latencies.  This module provides the registry those numbers live in
and the trace observer that feeds it, exported as a stable
``metrics.json``.

Design constraints inherited from the repo's invariants:

* **no floats on time** — histogram bucket bounds, sums, minima and
  maxima are integer nanoseconds (lint rule RT001 applies here too);
* **streaming** — :class:`MetricsObserver` implements the
  :class:`~repro.sim.trace.TraceSink` protocol, so it can be tee'd next
  to a file sink and consume events as they happen, independent of
  whether the trace retains them in memory;
* **stable output** — :meth:`MetricsRegistry.as_dict` sorts every key,
  and volatile host-dependent values (events/sec and friends) live in
  the ``gauges`` section so golden tests can pin the deterministic
  ``counters``/``histograms`` sections exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.sim.trace import EventKind, TraceEvent

__all__ = [
    "DEFAULT_BUCKETS_NS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsObserver",
    "write_metrics",
]

#: Default histogram bucket upper bounds: a 1-2-5 decade ladder from
#: 1 µs to 10 s, in integer nanoseconds (plus the implicit +inf bucket).
DEFAULT_BUCKETS_NS: tuple[int, ...] = tuple(
    mantissa * scale
    for scale in (1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000)
    for mantissa in (1, 2, 5)
) + (10_000_000_000,)


def _render_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """Monotonic integer counter."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> int:
        """The counter's state as a mergeable value (lossless)."""
        return self.value

    def merge(self, other: "Counter | int") -> None:
        """Fold another counter (or a :meth:`snapshot`) into this one.

        Counter merge is addition: associative, commutative, identity 0
        — the order worker snapshots arrive in cannot change the total.
        """
        amount = other.value if isinstance(other, Counter) else int(other)
        self.inc(amount)


@dataclass
class Gauge:
    """Last-write-wins value (the volatile section of the export)."""

    name: str
    value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def snapshot(self) -> int | float:
        """The gauge's state as a mergeable value."""
        return self.value

    def merge(self, other: "Gauge | int | float") -> None:
        """Fold another gauge into this one.

        Last-write-wins has no order-insensitive merge, so cross-process
        aggregation keeps gauges **per-pid** (see
        :mod:`repro.obs.aggregate`); merging two gauges from the *same*
        process takes the maximum, which is associative and commutative.
        """
        value = other.value if isinstance(other, Gauge) else other
        self.value = max(self.value, value)


@dataclass
class Histogram:
    """Fixed-bucket histogram over non-negative integer observations.

    ``bounds`` are inclusive upper bounds in ascending order; one
    implicit overflow bucket catches everything above the last bound.
    All state is integer, so exports are bit-identical across platforms.
    """

    name: str
    bounds: tuple[int, ...] = DEFAULT_BUCKETS_NS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: int = 0
    min: int | None = None
    max: int | None = None

    def __post_init__(self) -> None:
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bounds must be non-empty, sorted, unique")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative observation {value}")
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self) -> dict[str, Any]:
        """Lossless mergeable state: dense bucket counts plus the exact
        bounds (unlike :meth:`as_dict`'s sparse export encoding)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, other: "Histogram | Mapping[str, Any]") -> None:
        """Fold another histogram (or a :meth:`snapshot`) into this one.

        Bucket-wise addition — associative, commutative, identity the
        empty histogram.  Requires *bucket alignment*: both histograms
        must use the same bounds, because counts from differently
        bucketed histograms cannot be combined losslessly.
        """
        if isinstance(other, Histogram):
            other = other.snapshot()
        bounds = tuple(other["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name}: cannot merge misaligned buckets "
                f"({len(bounds)} bounds vs {len(self.bounds)})"
            )
        self.counts = [a + b for a, b in zip(self.counts, other["counts"])]
        self.count += other["count"]
        self.total += other["sum"]
        for attr, pick in (("min", min), ("max", max)):
            theirs = other[attr]
            if theirs is not None:
                ours = getattr(self, attr)
                setattr(self, attr, theirs if ours is None else pick(ours, theirs))

    def quantile(self, q: float) -> int | None:
        """Upper bound of the bucket holding the *q*-quantile (None when
        empty; the overflow bucket reports the observed max)."""
        if self.count == 0:
            return None
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        target = max(1, round(q * self.count))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max  # pragma: no cover - loop always reaches target

    def as_dict(self) -> dict[str, Any]:
        # Sparse bucket encoding keeps metrics.json readable: only
        # non-empty buckets appear, keyed by their upper bound ("+inf"
        # for the overflow bucket).
        buckets = {
            (str(self.bounds[i]) if i < len(self.bounds) else "+inf"): n
            for i, n in enumerate(self.counts)
            if n
        }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named metrics with optional labels, exported as stable JSON."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access --------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = _render_key(name, tuple(sorted(labels.items())))
        if key not in self._counters:
            self._counters[key] = Counter(key)
        return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _render_key(name, tuple(sorted(labels.items())))
        if key not in self._gauges:
            self._gauges[key] = Gauge(key)
        return self._gauges[key]

    def histogram(
        self, name: str, *, bounds: tuple[int, ...] = DEFAULT_BUCKETS_NS, **labels: str
    ) -> Histogram:
        key = _render_key(name, tuple(sorted(labels.items())))
        if key not in self._histograms:
            self._histograms[key] = Histogram(key, bounds=bounds)
        return self._histograms[key]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # Read-only views for the aggregation layer (repro.obs.aggregate).
    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return self._gauges

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    # -- export --------------------------------------------------------------
    def as_dict(self, extra: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """The ``metrics.json`` document.  ``counters``/``histograms``
        are deterministic (golden-testable); ``gauges`` hold volatile
        host-derived values; *extra* sections (cache stats, per-spec
        timings) are merged at the top level."""
        doc: dict[str, Any] = {
            "schema": 1,
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.as_dict() for k, h in sorted(self._histograms.items())},
        }
        for key, value in (extra or {}).items():
            doc[key] = value
        return doc


def write_metrics(
    path: str | Path, registry: MetricsRegistry, extra: Mapping[str, Any] | None = None
) -> Path:
    """Write the registry (plus *extra* sections) as ``metrics.json``."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(registry.as_dict(extra), indent=2, sort_keys=True) + "\n")
    return out


class MetricsObserver:
    """Trace-observer feeding a :class:`MetricsRegistry`.

    Implements the sink protocol, so it can sit in a
    :class:`~repro.sim.trace.TeeSink` beside a file sink.  Per task it
    maintains release/completion/stop/miss/preemption counters, a
    response-time histogram (release -> COMPLETE) and a detector-fire
    latency histogram (release -> DETECTOR_FIRE); detector-overhead
    pseudo-jobs (``__overhead*``) are excluded, matching
    :func:`repro.experiments.metrics.compute_metrics`.
    """

    _COUNTED = {
        EventKind.RELEASE: "releases",
        EventKind.PREEMPT: "preemptions",
        EventKind.COMPLETE: "completions",
        EventKind.STOP: "stops",
        EventKind.DEADLINE_MISS: "deadline_misses",
        EventKind.JOB_SKIP: "job_skips",
        EventKind.ESCALATE: "escalations",
        EventKind.DETECTOR_FIRE: "detector_fires",
        EventKind.FAULT_DETECTED: "faults_detected",
    }

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._releases: dict[tuple[str, int], int] = {}

    def emit(self, event: TraceEvent) -> None:
        if event.task.startswith("__overhead"):
            return
        self.registry.counter("trace_events_total").inc()
        name = self._COUNTED.get(event.kind)
        if name is None:
            return
        self.registry.counter(f"task_{name}_total", task=event.task).inc()
        key = (event.task, event.job)
        if event.kind is EventKind.RELEASE:
            self._releases[key] = event.time
            return
        released = self._releases.get(key)
        if released is None:
            return
        if event.kind is EventKind.COMPLETE:
            self.registry.histogram("task_response_time_ns", task=event.task).observe(
                event.time - released
            )
            del self._releases[key]
        elif event.kind is EventKind.STOP:
            del self._releases[key]
        elif event.kind is EventKind.DETECTOR_FIRE:
            self.registry.histogram(
                "task_detector_fire_latency_ns", task=event.task
            ).observe(event.time - released)

    def close(self) -> None:
        self._releases.clear()

    def observe_events(self, events: Iterable[TraceEvent]) -> MetricsRegistry:
        """Batch helper: feed *events* through and return the registry."""
        for event in events:
            self.emit(event)
        return self.registry
