"""Reproduction of every table and figure of the paper's evaluation.

Each ``tableN()`` / ``figureN()`` function regenerates the data behind
the corresponding exhibit and returns a structured result carrying:

* the raw numbers / simulation result,
* ``render()`` — a paper-style text rendering,
* ``claims()`` — the qualitative statements the paper makes about the
  exhibit, each checked against the reproduced data (these are what
  the benchmarks assert: the *shape* must hold even though our
  substrate is a simulator, not the authors' jRate testbed).

Since the executor refactor every exhibit is *declared* as an
:class:`~repro.exec.spec.ExperimentSpec` (the ``*_spec()`` factories)
and *materialised* by a module-level builder (``build_*``) that the
experiments registry dispatches — the classic ``figureN()`` entry
points are thin wrappers gluing the two together.  Builders never call
``simulate()`` directly (lint rule RT006); all simulation goes through
:func:`repro.exec.sim.simulate_spec`.

Figure mapping (see DESIGN.md §4):

========  ==========================================================
Table 1   the D-vs-T motivating system (as printed: inconsistent)
Figure 1  per-job response times — worst case not at the 1st job
Figure 2  the WCRT algorithm itself (exercised by everything here)
Table 2   tested system: WCRTs 29/58/87 ms, allowance 11 ms
Table 3   allowance-adjusted WCRTs 40/80/120 ms
Figure 3  no detection: tau3 misses its deadline
Figure 4  detection only: detector delays 1/2/3 ms (jRate rounding)
Figure 5  immediate stop: only tau1 fails; CPU idles before tau3's
          deadline
Figure 6  equitable allowance: tau1 runs 11 ms longer, slack unused
Figure 7  system allowance: tau1 stopped at WCRT+33 ms, tau2/tau3
          finish just before their deadlines
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.allowance import (
    adjusted_wcrt,
    additive_adjusted_wcrt,
    equitable_allowance,
)
from repro.core.context import AnalysisContext
from repro.core.feasibility import analyze, job_response_times, wc_response_time
from repro.core.task import TaskSet
from repro.core.treatments import TreatmentKind
from repro.exec.sim import resolve_scenario, resolve_vm, simulate_spec, vm_key_for
from repro.exec.spec import ExperimentSpec
from repro.experiments.metrics import RunMetrics, compute_metrics
from repro.sim.simulation import SimResult
from repro.sim.trace import EventKind
from repro.sim.vm import EXACT_VM, JRATE_VM, VMProfile
from repro.units import ms, to_ms
from repro.viz.tables import format_table
from repro.viz.timeline import TimelineOptions, render_timeline
from repro.workloads.scenarios import (
    PAPER_FAULTY_JOB,
    paper_fault_extra_ms,
    paper_horizon,
)

__all__ = [
    "Claim",
    "Table1Result",
    "Figure1Result",
    "Table2Result",
    "Table3Result",
    "FigureResult",
    "table1",
    "figure1",
    "table2",
    "table3",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "table1_spec",
    "figure1_spec",
    "table2_spec",
    "table3_spec",
    "figure3_spec",
    "figure4_spec",
    "figure5_spec",
    "figure6_spec",
    "figure7_spec",
    "build_table1",
    "build_figure1",
    "build_table2",
    "build_table3",
    "build_figure3",
    "build_figure4",
    "build_figure5",
    "build_figure6",
    "build_figure7",
    "vm_profile_name",
    "all_experiments",
]


@dataclass(frozen=True)
class Claim:
    """One qualitative statement from the paper, checked here."""

    description: str
    holds: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "OK " if self.holds else "FAIL"
        return f"[{mark}] {self.description}"


def vm_profile_name(vm: VMProfile) -> str:
    """The registry name of *vm* (specs store profiles by name)."""
    return vm_key_for(vm)


# ---------------------------------------------------------------------------
# Table 1 + Figure 1 — the motivation for the general WCRT algorithm
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Result:
    """Analysis of Table 1 as printed (see the OCR caveat in
    :func:`repro.workloads.scenarios.paper_table1`)."""

    taskset: TaskSet
    wcrt: dict[str, int | None]
    feasible: bool

    def render(self) -> str:
        rows = [
            (
                t.name,
                t.priority,
                to_ms(t.deadline),
                to_ms(t.period),
                to_ms(t.cost),
                to_ms(self.wcrt[t.name]) if self.wcrt[t.name] is not None else "unbounded",
            )
            for t in self.taskset
        ]
        table = format_table(
            ["task", "Pi", "Di", "Ti", "Ci", "WCRT"],
            rows,
            title="Table 1 (as printed; ms) - system is "
            + ("feasible" if self.feasible else "NOT feasible"),
        )
        return table

    def claims(self) -> list[Claim]:
        r2 = self.wcrt["tau2"]
        return [
            Claim(
                "as printed, tau2's response exceeds its 2 ms deadline "
                "(the printed table is inconsistent; kept for the record)",
                r2 is not None and r2 > self.taskset["tau2"].deadline,
            )
        ]


def table1_spec() -> ExperimentSpec:
    return ExperimentSpec.make(name="table1", builder="paper.table1", scenario="paper-table1")


def build_table1(spec: ExperimentSpec) -> Table1Result:
    """Analyse Table 1's printed numbers."""
    ts = resolve_scenario(spec).taskset
    report = analyze(ts)
    return Table1Result(
        taskset=ts,
        wcrt={name: r.wcrt for name, r in report.per_task.items()},
        feasible=report.feasible,
    )


def table1() -> Table1Result:
    """Analyse Table 1's printed numbers."""
    return build_table1(table1_spec())


@dataclass(frozen=True)
class Figure1Result:
    """Per-job response times over the level-i busy period, for the
    canonical arbitrary-deadline example (Lehoczky [10])."""

    taskset: TaskSet
    task_name: str
    responses: list[int]
    wcrt: int

    @property
    def argmax_job(self) -> int:
        return max(range(len(self.responses)), key=self.responses.__getitem__)

    def render(self) -> str:
        rows = [(q, r) for q, r in enumerate(self.responses)]
        table = format_table(
            ["job q", "response time"],
            rows,
            title=f"Figure 1 - successive job response times of {self.task_name} "
            f"(WCRT = {self.wcrt} at job {self.argmax_job})",
        )
        return table

    def claims(self) -> list[Claim]:
        return [
            Claim(
                "the worst-case response time does NOT occur at the "
                "critical-instant job (q=0)",
                self.argmax_job != 0,
            ),
            Claim(
                "the busy period spans several jobs before closing",
                len(self.responses) > 2,
            ),
            Claim(
                "the maximum of the series equals the Figure 2 WCRT",
                max(self.responses) == self.wcrt,
            ),
        ]


def figure1_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        name="figure1",
        builder="paper.figure1",
        scenario="lehoczky",
        params={"task": "t2"},
    )


def build_figure1(spec: ExperimentSpec) -> Figure1Result:
    """Per-job response-time series showing the Figure 1 phenomenon."""
    ts = resolve_scenario(spec).taskset
    name = spec.param("task", "t2")
    task = ts[name]
    responses = job_response_times(task, ts)
    wcrt = wc_response_time(task, ts)
    assert wcrt is not None
    return Figure1Result(taskset=ts, task_name=name, responses=responses, wcrt=wcrt)


def figure1() -> Figure1Result:
    """Per-job response-time series showing the Figure 1 phenomenon."""
    return build_figure1(figure1_spec())


# ---------------------------------------------------------------------------
# Table 2 — tested system, WCRTs and allowance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Result:
    """Table 2: the tested system with computed WCRT_i and A_i."""

    taskset: TaskSet
    wcrt: dict[str, int]
    allowance: int

    def render(self) -> str:
        rows = [
            (
                t.name,
                t.priority,
                to_ms(t.period),
                to_ms(t.deadline),
                to_ms(t.cost),
                to_ms(self.wcrt[t.name]),
                to_ms(self.allowance),
            )
            for t in self.taskset
        ]
        return format_table(
            ["task", "Pi", "Ti", "Di", "Ci", "WCRTi", "Ai"],
            rows,
            title="Table 2 - tested tasks system (ms)",
        )

    def claims(self) -> list[Claim]:
        return [
            Claim("WCRT = (29, 58, 87) ms", [self.wcrt[n] for n in ("tau1", "tau2", "tau3")] == [ms(29), ms(58), ms(87)]),
            Claim("equitable allowance A_i = 11 ms", self.allowance == ms(11)),
        ]


def table2_spec() -> ExperimentSpec:
    return ExperimentSpec.make(name="table2", builder="paper.table2", scenario="paper-table2")


def build_table2(spec: ExperimentSpec) -> Table2Result:
    ts = resolve_scenario(spec).taskset
    # One context serves both the WCRT column and the allowance search,
    # so the search warm-starts from the base fixed points.
    ctx = AnalysisContext(ts)
    report = ctx.analyze()
    wcrt = {name: r.wcrt for name, r in report.per_task.items()}
    assert all(v is not None for v in wcrt.values())
    return Table2Result(
        taskset=ts,
        wcrt={k: int(v) for k, v in wcrt.items()},  # type: ignore[arg-type]
        allowance=equitable_allowance(ts, context=ctx),
    )


def table2() -> Table2Result:
    return build_table2(table2_spec())


# ---------------------------------------------------------------------------
# Table 3 — worst-case response times with cost overruns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Result:
    """Table 3: WCRTs of the allowance-inflated system (§4.2 stop
    thresholds), exact recomputation vs the paper's additive form."""

    taskset: TaskSet
    allowance: int
    exact: dict[str, int]
    additive: dict[str, int]

    def render(self) -> str:
        rows = [
            (t.name, to_ms(self.exact[t.name]), to_ms(self.additive[t.name]))
            for t in self.taskset
        ]
        return format_table(
            ["task", "WCRT w/ overruns (exact)", "paper closed form"],
            rows,
            title=f"Table 3 - worst case response times with cost overruns "
            f"(A = {to_ms(self.allowance)} ms)",
        )

    def claims(self) -> list[Claim]:
        expected = {"tau1": ms(40), "tau2": ms(80), "tau3": ms(120)}
        return [
            Claim("adjusted WCRTs = (40, 80, 120) ms", self.exact == expected),
            Claim(
                "the exact recomputation matches the paper's additive "
                "closed form on this system",
                self.exact == self.additive,
            ),
        ]


def table3_spec() -> ExperimentSpec:
    return ExperimentSpec.make(name="table3", builder="paper.table3", scenario="paper-table2")


def build_table3(spec: ExperimentSpec) -> Table3Result:
    ts = resolve_scenario(spec).taskset
    ctx = AnalysisContext(ts)
    allowance = equitable_allowance(ts, context=ctx)
    return Table3Result(
        taskset=ts,
        allowance=allowance,
        exact=adjusted_wcrt(ts, allowance, context=ctx),
        additive=additive_adjusted_wcrt(ts, allowance),
    )


def table3() -> Table3Result:
    return build_table3(table3_spec())


# ---------------------------------------------------------------------------
# Figures 3-7 — the five execution configurations
# ---------------------------------------------------------------------------

#: The window the paper's figures display (around tau1's faulty job).
_FIG_WINDOW = (ms(950), ms(1200))


@dataclass(frozen=True)
class FigureResult:
    """One of the Figures 3-7 executions."""

    name: str
    treatment: TreatmentKind | None
    vm_name: str
    result: SimResult
    metrics: RunMetrics
    _claims: list[Claim] = field(default_factory=list)

    def job_end(self, task: str, index: int) -> int | None:
        return self.result.job(task, index).finished_at

    def render(self, *, width: int = 100) -> str:
        thresholds = None
        if self.result.runtime is not None:
            plan = self.result.runtime.plan
            thresholds = {
                n: plan.detectors[n].nominal_offset for n in plan.detectors
            }
        chart = render_timeline(
            self.result,
            TimelineOptions(start=_FIG_WINDOW[0], end=_FIG_WINDOW[1], width=width),
            thresholds=thresholds,
        )
        summary = ", ".join(
            f"{n} {'FAILED' if m.failed else 'ok'}" for n, m in self.metrics.per_task.items()
        )
        return f"{self.name} ({self.vm_name} VM)\n{chart}\n{summary}"

    def claims(self) -> list[Claim]:
        return list(self._claims)


def _figure_spec(n: int, treatment: str | None, vm: str) -> ExperimentSpec:
    """The common shape of the Figures 3-7 executions: Table 2's system
    phased as the figures show it, tau1's fifth job overrunning."""
    return ExperimentSpec.make(
        name=f"figure{n}",
        builder=f"paper.figure{n}",
        scenario="paper-figures",
        horizon=paper_horizon(),
        treatment=treatment,
        vm=vm,
        faults=(("tau1", PAPER_FAULTY_JOB, ms(paper_fault_extra_ms())),),
    )


def _figure_sim(spec: ExperimentSpec) -> tuple[SimResult, RunMetrics]:
    result = simulate_spec(spec)
    return result, compute_metrics(result)


def figure3_spec(vm: str = "exact") -> ExperimentSpec:
    return _figure_spec(3, None, vm)


def build_figure3(spec: ExperimentSpec) -> FigureResult:
    """No detection: tau1 faults, tau1/tau2 meet their deadlines, tau3
    misses — "It is the case we wish to avoid"."""
    result, metrics = _figure_sim(spec)
    t1, t2, t3 = (result.job(n, i) for n, i in (("tau1", 5), ("tau2", 4), ("tau3", 0)))
    claims = [
        Claim("tau1 makes a temporal fault around t=1020 ms", t1.overran and t1.finished_at is not None and t1.finished_at > ms(1020)),
        Claim("tau1 ends before its deadline", not t1.deadline_missed),
        Claim("tau2 ends before its deadline", not t2.deadline_missed),
        Claim("tau3 misses its deadline", t3.deadline_missed),
        Claim("no jobs were stopped (no treatment installed)", not result.stopped()),
    ]
    return FigureResult("Figure 3 - execution without detection", None, spec.vm, result, metrics, claims)


def figure3(vm: VMProfile = EXACT_VM) -> FigureResult:
    return build_figure3(figure3_spec(vm_profile_name(vm)))


def figure4_spec(vm: str = "jrate") -> ExperimentSpec:
    return _figure_spec(4, "detect-only", vm)


def build_figure4(spec: ExperimentSpec) -> FigureResult:
    """Detection without treatment: behaviour identical to Figure 3;
    detectors fire with the 10 ms-rounding delays (1, 2, 3 ms)."""
    result, metrics = _figure_sim(spec)
    vm = resolve_vm(spec.vm)
    t3 = result.job("tau3", 0)
    plan = result.runtime.plan if result.runtime else None
    delays = (
        {n: d.delay for n, d in plan.detectors.items()} if plan is not None else {}
    )
    expected_delays = {"tau1": ms(1), "tau2": ms(2), "tau3": ms(3)}
    fault_detected = [
        (e.task, e.job) for e in result.trace.of_kind(EventKind.FAULT_DETECTED)
    ]
    claims = [
        Claim("tau3 still misses its deadline (detection alone changes nothing)", t3.deadline_missed),
        Claim(
            "detector delays are 30-29=1, 60-58=2, 90-87=3 ms",
            vm.timer_rounding.mode.value != "none" and delays == expected_delays,
        ),
        Claim("the fault of tau1's 5th job is detected", ("tau1", 5) in fault_detected),
        Claim("no jobs were stopped", not result.stopped()),
    ]
    return FigureResult(
        "Figure 4 - execution with detection, without treatments",
        TreatmentKind.DETECT_ONLY,
        spec.vm,
        result,
        metrics,
        claims,
    )


def figure4(vm: VMProfile = JRATE_VM) -> FigureResult:
    return build_figure4(figure4_spec(vm_profile_name(vm)))


def figure5_spec(vm: str = "exact") -> ExperimentSpec:
    return _figure_spec(5, "immediate-stop", vm)


def build_figure5(spec: ExperimentSpec) -> FigureResult:
    """Immediate stop: only tau1 fails, but CPU time is wasted —
    "there remains time before its expiry"."""
    result, metrics = _figure_sim(spec)
    t3 = result.job("tau3", 0)
    idle_before_t3_deadline = (
        t3.finished_at is not None and t3.finished_at < t3.absolute_deadline
    )
    claims = [
        Claim(
            "the only task to fail is tau1 (stopped)",
            metrics.failed_tasks == ["tau1"],
        ),
        Claim("tau1 is stopped at its detection point", bool(result.stopped("tau1"))),
        Claim(
            "after tau3 ends the processor is free before tau3's expiry "
            "(tau1 could have run longer)",
            idle_before_t3_deadline,
        ),
        Claim("no non-faulty task fails", not metrics.collateral_failures),
    ]
    return FigureResult(
        "Figure 5 - execution without allowance (immediate stop)",
        TreatmentKind.IMMEDIATE_STOP,
        spec.vm,
        result,
        metrics,
        claims,
    )


def figure5(vm: VMProfile = EXACT_VM) -> FigureResult:
    return build_figure5(figure5_spec(vm_profile_name(vm)))


def figure6_spec(vm: str = "exact") -> ExperimentSpec:
    return _figure_spec(6, "equitable-allowance", vm)


def build_figure6(spec: ExperimentSpec) -> FigureResult:
    """Equitable allowance: tau1 gets 11 extra ms before the stop; the
    unconsumed allowance of tau2/tau3 is wasted CPU."""
    result, metrics = _figure_sim(spec)
    stop_t1 = result.job("tau1", 5).finished_at
    fig5_stop = build_figure5(figure5_spec(spec.vm)).job_end("tau1", 5)
    t2, t3 = result.job("tau2", 4), result.job("tau3", 0)
    slack_left = (
        t3.finished_at is not None and t3.finished_at < t3.absolute_deadline
    )
    claims = [
        Claim("only tau1 is stopped", [j.name for j in result.stopped()] == ["tau1"]),
        Claim(
            "tau1 had more time to execute than under immediate stop",
            stop_t1 is not None and fig5_stop is not None and stop_t1 > fig5_stop,
        ),
        Claim(
            "tau1 is stopped at its adjusted WCRT (release + 40 ms)",
            stop_t1 == ms(1000) + ms(40),
        ),
        Claim("tau2 and tau3 meet their deadlines", not t2.deadline_missed and not t3.deadline_missed),
        Claim(
            "unused CPU time remains (tau2/tau3 did not consume their allowance)",
            slack_left,
        ),
    ]
    return FigureResult(
        "Figure 6 - allowance granted equitably to all tasks",
        TreatmentKind.EQUITABLE_ALLOWANCE,
        spec.vm,
        result,
        metrics,
        claims,
    )


def figure6(vm: VMProfile = EXACT_VM) -> FigureResult:
    return build_figure6(figure6_spec(vm_profile_name(vm)))


def figure7_spec(vm: str = "exact") -> ExperimentSpec:
    return _figure_spec(7, "system-allowance", vm)


def build_figure7(spec: ExperimentSpec) -> FigureResult:
    """System allowance: the whole 33 ms goes to tau1; tau2 and tau3
    finish just before their deadlines."""
    result, metrics = _figure_sim(spec)
    t1, t2, t3 = (result.job(n, i) for n, i in (("tau1", 5), ("tau2", 4), ("tau3", 0)))
    wcrt1 = ms(29)
    claims = [
        Claim(
            "tau1 is stopped thirty-three milliseconds after its WCRT",
            t1.was_stopped and t1.finished_at == ms(1000) + wcrt1 + ms(33),
        ),
        Claim(
            "tau2 finishes just before its deadline",
            t2.finished_at is not None
            and not t2.deadline_missed
            and t2.absolute_deadline - t2.finished_at <= ms(33),
        ),
        Claim(
            "tau3 finishes just before its deadline",
            t3.finished_at is not None
            and not t3.deadline_missed
            and t3.absolute_deadline - t3.finished_at <= ms(5),
        ),
        Claim("no non-faulty task fails", not metrics.collateral_failures),
    ]
    return FigureResult(
        "Figure 7 - allowance granted totally to the first faulty task",
        TreatmentKind.SYSTEM_ALLOWANCE,
        spec.vm,
        result,
        metrics,
        claims,
    )


def figure7(vm: VMProfile = EXACT_VM) -> FigureResult:
    return build_figure7(figure7_spec(vm_profile_name(vm)))


def all_experiments() -> dict[str, Callable[[], object]]:
    """Experiment registry (used by the CLI and EXPERIMENTS.md)."""
    return {
        "table1": table1,
        "figure1": figure1,
        "table2": table2,
        "table3": table3,
        "figure3": figure3,
        "figure4": figure4,
        "figure5": figure5,
        "figure6": figure6,
        "figure7": figure7,
    }
