"""Kill-and-resume: an interrupted sweep keeps its finished chunks.

This is the end-to-end satellite of the sweep layer: a real CLI sweep
process is SIGKILLed mid-run (no atexit, no cleanup — the hard case),
and the re-invocation must serve every chunk that finished before the
kill from the cache, recompute only the rest, and land on the same
manifest fingerprint as a run that was never interrupted.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SWEEP = "landscape-smoke"  # 504 systems, 12 chunks of 42
CHUNKS = 12


def sweep_cmd(cache: Path, *extra: str) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.experiments",
        "sweep",
        SWEEP,
        "--cache",
        str(cache),
        *extra,
    ]


def env() -> dict:
    e = dict(os.environ)
    e["PYTHONPATH"] = str(REPO / "src")
    return e


def run_to_completion(cache: Path, *extra: str) -> str:
    proc = subprocess.run(
        sweep_cmd(cache, *extra),
        cwd=REPO,
        env=env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def fingerprint_of(stdout: str) -> str:
    match = re.search(r"^fingerprint ([0-9a-f]{64})$", stdout, re.MULTILINE)
    assert match, stdout
    return match.group(1)


def cache_stats_of(stdout: str) -> tuple[int, int]:
    match = re.search(r"cache: hits=(\d+) misses=(\d+)", stdout)
    assert match, stdout
    return int(match.group(1)), int(match.group(2))


@pytest.mark.slow
def test_sigkilled_sweep_resumes_from_finished_chunks(tmp_path):
    killed_cache = tmp_path / "killed"
    clean_cache = tmp_path / "clean"

    # Reference: the same sweep, never interrupted.
    reference = run_to_completion(clean_cache)
    ref_fp = fingerprint_of(reference)

    # Start the sweep in its own session (so the kill reaps the worker
    # pool too) and SIGKILL it once at least one chunk result landed.
    proc = subprocess.Popen(
        sweep_cmd(killed_cache, "--jobs", "2"),
        cwd=REPO,
        env=env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if len(list(killed_cache.glob("*.pkl"))) >= 1 or proc.poll() is not None:
                break
            time.sleep(0.01)
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=60)

    finished_before_resume = len(list(killed_cache.glob("*.pkl")))
    assert finished_before_resume >= 1, "no chunk finished before the kill"

    # Resume: finished chunks come back from cache, the rest recompute.
    resumed = run_to_completion(killed_cache)
    hits, misses = cache_stats_of(resumed)
    assert hits == finished_before_resume
    assert hits + misses == CHUNKS
    assert fingerprint_of(resumed) == ref_fp

    # A third run is a pure replay.
    replay = run_to_completion(killed_cache)
    assert cache_stats_of(replay) == (CHUNKS, 0)
    assert fingerprint_of(replay) == ref_fp
