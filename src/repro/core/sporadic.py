"""Sporadic (aperiodic) tasks — §7 future work.

"Another main line of our research will consist in studying the faults
detection and tolerance in the case of aperiodic tasks."

A *sporadic* task releases jobs at arbitrary instants separated by at
least a minimum interarrival time (MIT).  For fixed-priority analysis
it is safely modelled as a periodic task of period = MIT (the densest
legal arrival pattern), so the whole admission-control/allowance
machinery applies unchanged; at runtime the detector must follow the
*actual* release of each job (a one-shot timer armed per release rather
than the periodic timer of §3 — the "adaptation of the behaviour of our
detectors" the paper anticipates).

This module provides the sporadic task model, legal arrival-sequence
generators, and the bridge into the simulator's explicit-arrival
support.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.task import Task, TaskSet
from repro.rng import resolve_rng

__all__ = [
    "SporadicTask",
    "periodic_equivalent",
    "dense_arrivals",
    "poisson_arrivals",
    "validate_arrivals",
]


@dataclass(frozen=True)
class SporadicTask:
    """A sporadic task: cost, minimum interarrival, deadline, priority."""

    name: str
    cost: int
    min_interarrival: int
    priority: int
    deadline: int = -1

    def __post_init__(self) -> None:
        if self.min_interarrival <= 0:
            raise ValueError("minimum interarrival must be > 0")
        if self.deadline == -1:
            object.__setattr__(self, "deadline", self.min_interarrival)
        if self.cost <= 0 or self.deadline <= 0:
            raise ValueError("cost and deadline must be > 0")


def periodic_equivalent(sporadic: SporadicTask) -> Task:
    """The analysis view: a periodic task of period = MIT.

    Worst-case interference of a sporadic task is produced by its
    densest arrival pattern, so every feasibility/allowance result for
    the equivalent set is valid (conservative) for the sporadic system.
    """
    return Task(
        name=sporadic.name,
        cost=sporadic.cost,
        period=sporadic.min_interarrival,
        deadline=sporadic.deadline,
        priority=sporadic.priority,
    )


def analysis_taskset(
    periodic: TaskSet | list[Task], sporadics: list[SporadicTask]
) -> TaskSet:
    """Combine periodic tasks and sporadic tasks for analysis."""
    return TaskSet([*list(periodic), *(periodic_equivalent(s) for s in sporadics)])


def dense_arrivals(sporadic: SporadicTask, horizon: int, *, start: int = 0) -> list[int]:
    """The densest legal arrival sequence: back-to-back at the MIT."""
    out = []
    t = start
    while t <= horizon:
        out.append(t)
        t += sporadic.min_interarrival
    return out


def poisson_arrivals(
    sporadic: SporadicTask,
    horizon: int,
    *,
    mean_interarrival: int | None = None,
    seed: int = 0,
    rng: random.Random | None = None,
) -> list[int]:
    """A random legal arrival sequence: exponential gaps clamped from
    below by the MIT (seeded, deterministic).

    *mean_interarrival* defaults to twice the MIT.  An injected *rng*
    wins over *seed*, so callers can draw several sequences from one
    explicitly-seeded stream.
    """
    mean = mean_interarrival if mean_interarrival is not None else 2 * sporadic.min_interarrival
    if mean < sporadic.min_interarrival:
        raise ValueError("mean interarrival below the minimum interarrival")
    rng = resolve_rng(rng, seed)
    out: list[int] = []
    t = round(rng.expovariate(1.0 / mean))
    while t <= horizon:
        out.append(t)
        gap = max(round(rng.expovariate(1.0 / mean)), sporadic.min_interarrival)
        t += gap
    return out


def validate_arrivals(sporadic: SporadicTask, arrivals: list[int]) -> None:
    """Raise ValueError when *arrivals* violates the MIT contract."""
    for a, b in zip(arrivals, arrivals[1:]):
        if b - a < sporadic.min_interarrival:
            raise ValueError(
                f"{sporadic.name}: gap {b - a} below minimum interarrival "
                f"{sporadic.min_interarrival}"
            )
    if any(t < 0 for t in arrivals):
        raise ValueError(f"{sporadic.name}: negative arrival time")
