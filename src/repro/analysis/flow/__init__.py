"""Whole-program flow analysis (DESIGN.md §3.7).

The per-file linter (:mod:`repro.analysis.lint`) sees one AST at a
time, so any discipline violation that crosses a call into another
module is invisible to it.  This package adds the missing layer:

* :mod:`~repro.analysis.flow.model` — parse the project once into
  picklable per-module summaries plus import/call graphs;
* :mod:`~repro.analysis.flow.taint` — a three-kind taint lattice
  (volatile / integer-ns / rng) with an interprocedural fixpoint;
* :mod:`~repro.analysis.flow.rules` — the RT1xx cross-module rules;
* :mod:`~repro.analysis.flow.cache` — content-hash incremental store
  so ``--changed-only`` re-extracts just the edited files;
* :mod:`~repro.analysis.flow.sarif` / :mod:`~repro.analysis.flow.baseline`
  / :mod:`~repro.analysis.flow.autofix` — CI surface: code-scanning
  output, the legacy-findings ratchet, and safe mechanical fixes.

:func:`analyze` is the one-call entry the CLI and tests use.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.autofix import Fix, fix_file, fix_source
from repro.analysis.flow.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineDiff,
    diff_baseline,
    fingerprint,
    load_baseline,
    save_baseline,
)
from repro.analysis.flow.cache import DEFAULT_FLOW_CACHE_DIR, FlowCache
from repro.analysis.flow.model import ProjectModel, build_model
from repro.analysis.flow.rules import FLOW_RULES, flow_rule_codes, run_flow_rules
from repro.analysis.flow.sarif import render_sarif
from repro.analysis.flow.taint import TaintState, propagate

__all__ = [
    "analyze",
    "build_model",
    "ProjectModel",
    "propagate",
    "TaintState",
    "run_flow_rules",
    "FLOW_RULES",
    "flow_rule_codes",
    "FlowCache",
    "DEFAULT_FLOW_CACHE_DIR",
    "render_sarif",
    "DEFAULT_BASELINE_PATH",
    "BaselineDiff",
    "diff_baseline",
    "fingerprint",
    "load_baseline",
    "save_baseline",
    "Fix",
    "fix_file",
    "fix_source",
]


def analyze(
    paths: Sequence[str | Path],
    *,
    codes: Iterable[str] | None = None,
    hot_roots: Sequence[str] | None = None,
    cache: FlowCache | None = None,
) -> tuple[list[Diagnostic], ProjectModel]:
    """Build (or incrementally refresh) the project model for *paths*
    and run the whole-program rules; the cache, when given, is saved."""
    model = build_model(paths, cache=cache)
    diagnostics = run_flow_rules(model, codes=codes, hot_roots=hot_roots)
    if cache is not None:
        cache.save()
    return diagnostics, model
