"""Cost under-run detection and resource reassignment — §7 future work.

"If the cost of a task can be underestimated, it is also possible to
overestimate it.  Consequently, we can consider to dynamically study
the system in order to detect these costs under-run and to reassign
resources for faulty tasks."

The implementation observes executed times in a simulation trace,
detects tasks whose declared cost is systematically pessimistic,
proposes tightened costs (with a safety margin), and quantifies the
allowance the system gains — extra tolerance that becomes available to
genuinely faulty tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.allowance import equitable_allowance
from repro.core.feasibility import is_feasible
from repro.core.task import TaskSet
from repro.sim.simulation import SimResult

__all__ = ["observed_costs", "tighten_costs", "ReclaimReport", "reclaim_allowance"]


def observed_costs(result: SimResult) -> dict[str, int]:
    """Largest executed time among *completed* jobs, per task.

    Stopped jobs are excluded (their execution was truncated, not
    observed to completion), as are tasks with no completed job.
    """
    out: dict[str, int] = {}
    for task in result.taskset:
        samples = [
            j.executed
            for j in result.jobs_of(task.name)
            if j.finished and not j.was_stopped
        ]
        if samples:
            out[task.name] = max(samples)
    return out


def tighten_costs(
    taskset: TaskSet,
    observed: Mapping[str, int],
    *,
    margin_percent: int = 10,
) -> TaskSet:
    """Return the set with declared costs lowered toward observations.

    The new cost is ``observed * (100 + margin_percent) / 100`` (rounded
    up), floored at 1 ns and **never above the declared cost** — an
    under-run study must not make the model less safe than the original
    declaration.  Tasks without observations keep their cost.
    """
    if margin_percent < 0:
        raise ValueError("margin_percent must be >= 0")
    new_costs: dict[str, int] = {}
    for task in taskset:
        if task.name not in observed:
            continue
        padded = -(-observed[task.name] * (100 + margin_percent) // 100)
        new_costs[task.name] = max(1, min(padded, task.cost))
    return taskset.with_costs(new_costs)


@dataclass(frozen=True)
class ReclaimReport:
    """Outcome of an under-run study."""

    original: TaskSet
    tightened: TaskSet
    observed: Mapping[str, int]
    old_allowance: int
    new_allowance: int

    @property
    def reclaimed(self) -> int:
        """Extra equitable allowance gained by tightening (>= 0)."""
        return self.new_allowance - self.old_allowance

    def savings(self) -> dict[str, int]:
        """Per-task declared-cost reduction."""
        return {
            t.name: t.cost - self.tightened[t.name].cost for t in self.original
        }


def reclaim_allowance(
    taskset: TaskSet, result: SimResult, *, margin_percent: int = 10
) -> ReclaimReport:
    """Run the full §7 under-run study on a simulation result.

    Measures completed-job costs, tightens declarations, and recomputes
    the equitable allowance — the resources "reassigned to faulty
    tasks".  The input set must be feasible (it passed admission).
    """
    if not is_feasible(taskset):
        raise ValueError("under-run study requires a feasible system")
    observed = observed_costs(result)
    tightened = tighten_costs(taskset, observed, margin_percent=margin_percent)
    return ReclaimReport(
        original=taskset,
        tightened=tightened,
        observed=observed,
        old_allowance=equitable_allowance(taskset),
        new_allowance=equitable_allowance(tightened),
    )
