"""Unit tests for the RTSJ memory-area emulation."""

import pytest

from repro.rtsj.memory import (
    AllocationContext,
    ImmortalMemory,
    LTMemory,
    MemoryAccessError,
    ScopedMemory,
)


class TestAreas:
    def test_immortal_unbounded(self):
        im = ImmortalMemory()
        im.allocate(10**12)
        assert im.memoryRemaining() is None
        assert im.memoryConsumed() == 10**12

    def test_scope_size_enforced(self):
        scope = LTMemory(100)
        scope.allocate(60)
        assert scope.memoryRemaining() == 40
        with pytest.raises(MemoryAccessError):
            scope.allocate(41)
        scope.allocate(40)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ScopedMemory(0)
        with pytest.raises(ValueError):
            ImmortalMemory().allocate(0)


class TestEnterSemantics:
    def test_current_defaults_to_immortal(self):
        ctx = AllocationContext()
        assert ctx.current() is ctx.immortal

    def test_enter_switches_allocation_area(self):
        ctx = AllocationContext()
        scope = LTMemory(1000)
        with ctx.enter(scope):
            ctx.allocate(100)
        assert scope.memoryConsumed() == 0  # cleared on last exit
        ctx.allocate(5)
        assert ctx.immortal.memoryConsumed() == 5

    def test_scope_cleared_only_on_last_exit(self):
        ctx = AllocationContext()
        scope = LTMemory(1000)
        with ctx.enter(scope):
            ctx.allocate(100)
            with ctx.enter(LTMemory(50, "inner")):
                pass
            assert scope.memoryConsumed() == 100
        assert scope.memoryConsumed() == 0

    def test_nesting_depth(self):
        ctx = AllocationContext()
        outer, inner = LTMemory(100, "outer"), LTMemory(100, "inner")
        with ctx.enter(outer):
            with ctx.enter(inner):
                assert ctx.current() is inner
            assert ctx.current() is outer


class TestSingleParentRule:
    def test_reentry_from_same_parent_ok(self):
        ctx = AllocationContext()
        scope = LTMemory(100)
        with ctx.enter(scope):
            pass
        # Scope was fully exited: parent reset, re-parenting allowed.
        other = LTMemory(100, "other")
        with ctx.enter(other):
            with ctx.enter(scope):
                pass

    def test_enter_from_wrong_parent_rejected(self):
        ctx = AllocationContext()
        a, b = LTMemory(100, "a"), LTMemory(100, "b")
        with ctx.enter(a):
            with ctx.enter(b):
                pass
            # b's parent is a while a is still entered... leave b only.
            with ctx.enter(b):
                pass
        # Now a fully exited: b was cleared too (exited), so its parent
        # reset when its enter count dropped to zero.
        with ctx.enter(b):
            pass

    def test_wrong_parent_across_threads(self):
        # Two threads (contexts) share the scope objects; while thread 1
        # keeps b entered (parent = a), thread 2 may enter b only from a.
        immortal = ImmortalMemory()
        ctx1 = AllocationContext(immortal=immortal)
        ctx2 = AllocationContext(immortal=immortal)
        a, b, c = LTMemory(100, "a"), LTMemory(100, "b"), LTMemory(100, "c")
        with ctx1.enter(a):
            with ctx1.enter(b):
                with ctx2.enter(c):
                    with pytest.raises(MemoryAccessError, match="single parent"):
                        with ctx2.enter(b):
                            pass
                # Entering from the proper parent is fine.
                with ctx2.enter(a):
                    with ctx2.enter(b):
                        pass

    def test_cycle_rejected(self):
        ctx = AllocationContext()
        scope = LTMemory(100)
        with ctx.enter(scope):
            with pytest.raises(MemoryAccessError, match="re-entered"):
                with ctx.enter(scope):
                    pass


class TestAssignmentRule:
    def test_outer_cannot_reference_inner(self):
        ctx = AllocationContext()
        holder = ctx.allocate(8)  # immortal
        scope = LTMemory(100)
        with ctx.enter(scope):
            value = ctx.allocate(8)
            with pytest.raises(MemoryAccessError, match="illegal assignment"):
                ctx.check_assignment(holder, value)

    def test_inner_may_reference_outer(self):
        ctx = AllocationContext()
        outer_obj = ctx.allocate(8)
        scope = LTMemory(100)
        with ctx.enter(scope):
            inner_obj = ctx.allocate(8)
            ctx.check_assignment(inner_obj, outer_obj)  # fine

    def test_same_area_ok(self):
        ctx = AllocationContext()
        a, b = ctx.allocate(8), ctx.allocate(8)
        ctx.check_assignment(a, b)
        ctx.check_assignment(b, a)
