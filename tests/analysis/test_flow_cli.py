"""The flow-layer CLI surface: --flow, --changed-only, sarif, baseline,
--fix, plus the unified discovery / --strict satellites."""

import json

import pytest

from repro.analysis import main
from repro.analysis.cli import discover_targets


RT102_FILES = {
    "mint.py": """
        from repro.units import ms


        def grant():
            return ms(5)
    """,
    "consume.py": """
        from pkg.mint import grant


        def bad_mean(n):
            return grant() / n
    """,
}

WARNING_ONLY = "import time\n\nx = 1  # noqa: RT001\n"


class TestFlowFlag:
    def test_flow_finds_cross_module_violation(self, write_package, capsys):
        root = write_package(RT102_FILES)
        assert main([str(root), "--flow"]) == 1
        out = capsys.readouterr().out
        assert "RT102" in out and "bad_mean" in out

    def test_without_flow_the_same_tree_is_clean(self, write_package, capsys):
        root = write_package(RT102_FILES)
        assert main([str(root)]) == 0

    def test_select_flow_code(self, write_package, capsys):
        root = write_package(RT102_FILES)
        assert main([str(root), "--flow", "--select", "RT104"]) == 0
        assert main([str(root), "--flow", "--select", "RT102"]) == 1

    def test_list_rules_includes_flow_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RT101", "RT102", "RT103", "RT104", "RT099"):
            assert code in out


class TestChangedOnly:
    def test_second_run_reuses_all_summaries(
        self, write_package, tmp_path, capsys
    ):
        root = write_package(RT102_FILES)
        cache = tmp_path / "cache"
        args = [str(root), "--changed-only", "--cache-dir", str(cache)]

        main(args)
        first = capsys.readouterr().err
        assert "0 reused" in first

        main(args)
        warm = capsys.readouterr().err
        assert "0 re-analyzed" in warm

        # Touch one file: exactly one module re-analyzed.
        target = root / "mint.py"
        target.write_text(target.read_text() + "\n# touched\n")
        main(args)
        touched = capsys.readouterr().err
        assert "1 re-analyzed" in touched

    def test_changed_only_implies_flow(self, write_package, tmp_path, capsys):
        root = write_package(RT102_FILES)
        rc = main(
            [str(root), "--changed-only", "--cache-dir", str(tmp_path / "c")]
        )
        assert rc == 1  # the RT102 finding — flow ran without --flow


class TestSarifOutput:
    def test_sarif_document_on_stdout(self, write_package, capsys):
        root = write_package(RT102_FILES)
        main([str(root), "--flow", "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["RT102"]

    def test_notes_do_not_corrupt_sarif(self, write_package, tmp_path, capsys):
        root = write_package(RT102_FILES)
        main(
            [
                str(root),
                "--changed-only",
                "--cache-dir",
                str(tmp_path / "c"),
                "--format",
                "sarif",
            ]
        )
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is pure JSON
        assert "flow cache" in captured.err


class TestBaselineFlags:
    def test_write_then_enforce(self, write_package, tmp_path, capsys):
        root = write_package(RT102_FILES)
        bl = tmp_path / "bl.json"

        assert main([str(root), "--flow", "--write-baseline", str(bl)]) == 0
        assert json.loads(bl.read_text())["findings"]

        # The recorded finding no longer fails the run.
        assert main([str(root), "--flow", "--baseline", str(bl)]) == 0
        captured = capsys.readouterr()
        assert "clean" in captured.out
        assert "accepted finding(s) suppressed" in captured.err

    def test_new_finding_still_fails(self, write_package, tmp_path, capsys):
        root = write_package(RT102_FILES)
        bl = tmp_path / "bl.json"
        main([str(root), "--flow", "--write-baseline", str(bl)])
        capsys.readouterr()

        (root / "consume.py").write_text(
            (root / "consume.py").read_text()
            + "\n\ndef also_bad(n):\n    return grant() / (n + 1)\n"
        )
        assert main([str(root), "--flow", "--baseline", str(bl)]) == 1
        out = capsys.readouterr().out
        assert "also_bad" in out and "bad_mean" not in out

    def test_resolved_entries_warn_but_pass(
        self, write_package, tmp_path, capsys
    ):
        root = write_package(RT102_FILES)
        bl = tmp_path / "bl.json"
        main([str(root), "--flow", "--write-baseline", str(bl)])
        capsys.readouterr()

        (root / "consume.py").write_text(
            "from pkg.mint import grant\n\n\ndef fixed(n):\n    return grant() // n\n"
        )
        assert main([str(root), "--flow", "--baseline", str(bl)]) == 0
        assert "no longer fire" in capsys.readouterr().err


class TestFixFlag:
    def test_fix_rewrites_then_checks(self, tmp_path, capsys):
        p = tmp_path / "seeding.py"
        p.write_text(
            "import random\n"
            "\n"
            "\n"
            "def make(name):\n"
            "    return random.Random(hash(name))\n"
        )
        assert main([str(p), "--fix"]) == 0
        text = p.read_text()
        assert "derive_rng(name)" in text
        assert "hash(" not in text
        assert "file(s) changed" in capsys.readouterr().err

    def test_fix_strips_stale_noqa(self, tmp_path, capsys):
        p = tmp_path / "stale.py"
        p.write_text("def f(x):\n    return x  # noqa: RT001\n")
        main([str(p), "--fix"])
        assert "noqa" not in p.read_text()


class TestDiscoveryUnification:
    def test_explicit_file_and_directory_dedupe(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        (tmp_path / "sys.scn").write_text("@unit ms\n")
        py, scn = discover_targets(
            [tmp_path, tmp_path / "mod.py", tmp_path / "sys.scn"]
        )
        assert len(py) == 1 and len(scn) == 1

    def test_explicit_non_python_file_goes_to_validator(self, tmp_path):
        odd = tmp_path / "system.conf"
        odd.write_text("@unit ms\n")
        py, scn = discover_targets([odd])
        assert py == [] and scn == [odd]

    def test_directory_walk_only_picks_known_suffixes(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("hello\n")
        py, scn = discover_targets([tmp_path])
        assert [p.name for p in py] == ["mod.py"]
        assert scn == []

    def test_select_behaves_identically_for_file_and_dir(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n\n\ndef f(period):\n"
            "    return period * 0.5 + random.random()\n"
        )

        def codes(args):
            assert main(args + ["--format", "json"]) in (0, 1)
            payload = json.loads(capsys.readouterr().out)
            return sorted({d["code"] for d in payload["diagnostics"]})

        via_file = codes([str(bad), "--select", "RT003"])
        via_dir = codes([str(tmp_path), "--select", "RT003"])
        assert via_file == via_dir == ["RT003"]


class TestStrictExitCodes:
    @pytest.mark.parametrize(
        "extra,expected",
        [([], 0), (["--strict"], 1)],
    )
    def test_warning_only_run(self, tmp_path, capsys, extra, expected):
        p = tmp_path / "warny.py"
        # A stale suppression is warning-severity RT099.
        p.write_text(WARNING_ONLY)
        assert main([str(p)] + extra) == expected

    def test_strict_with_clean_tree_still_zero(self, tmp_path):
        p = tmp_path / "clean.py"
        p.write_text("def f(x):\n    return x\n")
        assert main([str(p), "--strict"]) == 0
