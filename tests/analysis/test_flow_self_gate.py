"""Whole-program self-analysis gate.

The flow layer runs over its own codebase on every test run; any
finding not recorded in the committed ``analysis-baseline.json`` fails
here (the same ratchet CI enforces).  Burn-down is one-way: resolving
a legacy finding means re-tightening the baseline, never loosening it.
"""

from pathlib import Path

from repro.analysis.flow import analyze, diff_baseline, load_baseline

REPO = Path(__file__).resolve().parents[2]


def test_source_tree_has_no_new_flow_findings(monkeypatch):
    monkeypatch.chdir(REPO)  # fingerprints normalize paths against cwd
    baseline = load_baseline(REPO / "analysis-baseline.json")
    diagnostics, model = analyze([REPO / "src" / "repro"])
    # Sanity: this really is the whole program, not a partial parse.
    assert len(model.modules) > 50
    assert all(s.parse_error is None for s in model.modules.values())

    diff = diff_baseline(diagnostics, baseline)
    assert diff.new == [], [str(d) for d in diff.new]


def test_baseline_has_no_resolved_debt(monkeypatch):
    # When a legacy finding is fixed, the baseline must be re-tightened
    # (python -m repro.analysis --flow src/repro --write-baseline).
    monkeypatch.chdir(REPO)
    baseline = load_baseline(REPO / "analysis-baseline.json")
    diagnostics, _ = analyze([REPO / "src" / "repro"])
    diff = diff_baseline(diagnostics, baseline)
    assert diff.resolved == 0
