"""The execution layer's simulation adapter — the one sanctioned
bridge between experiment specs and :func:`repro.sim.simulation.simulate`.

The presentation layer (``repro.experiments``) is forbidden from
calling ``simulate()`` / ``run_scenario()`` directly (lint rule
``RT006``): every simulation an exhibit needs goes through either

* :func:`simulate_spec` — resolve a declarative
  :class:`~repro.exec.spec.ExperimentSpec` (named scenario or inline
  scenario text, fault triples, treatment string, VM profile name) and
  run it; or
* :func:`run_simulation` — a thin pass-through for experiment code
  whose configuration is already concrete (sweeps over generated task
  sets), kept here so the call site is auditable.

Keeping the bridge in one module is what makes the result cache
trustworthy: a spec's hash covers everything this module feeds into
the simulator.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence

from repro.core.faults import CostOverrun, CostUnderrun, FaultInjector, FaultModel
from repro.core.partition import Heuristic
from repro.core.task import TaskSet
from repro.core.treatments import TreatmentKind, TreatmentPlan
from repro.exec.spec import ExperimentSpec
from repro.obs import runtime as obs_runtime
from repro.sim.engine import EngineObserver
from repro.sim.locking import LockProtocol, SectionSpec
from repro.sim.mp import MPSimResult, simulate_partitioned
from repro.sim.simulation import SimResult, simulate
from repro.sim.trace import TeeSink, TraceSink
from repro.sim.vm import EXACT_VM, JRATE_VM, VMProfile
from repro.workloads import scenarios
from repro.workloads.parser import Scenario, parse_scenario

__all__ = [
    "SCENARIO_FACTORIES",
    "VM_PROFILES",
    "resolve_vm",
    "vm_key_for",
    "resolve_scenario",
    "run_simulation",
    "run_mp_simulation",
    "simulate_spec",
]

#: Named task-set factories specs may reference.
SCENARIO_FACTORIES: Mapping[str, Callable[[], TaskSet]] = {
    "paper-table1": scenarios.paper_table1,
    "paper-table2": scenarios.paper_table2,
    "paper-figures": scenarios.paper_figures_taskset,
    "lehoczky": scenarios.lehoczky_example,
}

#: Named VM profiles specs may reference.
VM_PROFILES: Mapping[str, VMProfile] = {
    "exact": EXACT_VM,
    "jrate": JRATE_VM,
}


def resolve_vm(name: str) -> VMProfile:
    """The VM profile a spec's ``vm`` field names."""
    try:
        return VM_PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown VM profile {name!r}; known: {', '.join(VM_PROFILES)}") from None


def vm_key_for(vm: VMProfile) -> str:
    """The registry key of *vm* — the inverse of :func:`resolve_vm`
    (specs store VM profiles by name so they stay hashable)."""
    for name, profile in VM_PROFILES.items():
        if profile == vm:
            return name
    raise ValueError(
        f"VM profile {vm.name!r} is not registered in repro.exec.sim.VM_PROFILES"
    )


def _fault_injector(triples: Sequence[tuple[str, int, int]]) -> FaultInjector:
    deviations: list[CostOverrun | CostUnderrun] = []
    for task, job, extra in triples:
        if extra >= 0:
            deviations.append(CostOverrun(task, job, extra))
        else:
            deviations.append(CostUnderrun(task, job, -extra))
    return FaultInjector(deviations)


def resolve_scenario(spec: ExperimentSpec) -> Scenario:
    """The concrete scenario a simulation spec describes.

    A named ``scenario`` resolves through :data:`SCENARIO_FACTORIES`
    (spec-level faults/horizon/treatment fill the scenario in); inline
    ``scenario_text`` goes through the scenario parser, with spec fields
    overriding the file's directives when set.
    """
    if spec.scenario is not None:
        try:
            taskset = SCENARIO_FACTORIES[spec.scenario]()
        except KeyError:
            raise ValueError(
                f"spec {spec.name!r}: unknown scenario {spec.scenario!r}; "
                f"known: {', '.join(SCENARIO_FACTORIES)}"
            ) from None
        return Scenario(
            taskset=taskset,
            horizon=spec.horizon,
            faults=_fault_injector(spec.faults),
            treatment=TreatmentKind(spec.treatment) if spec.treatment else None,
        )
    if spec.scenario_text is not None:
        parsed = parse_scenario(spec.scenario_text, source=spec.name)
        faults = parsed.faults
        if spec.faults:
            faults = _fault_injector(spec.faults)
        return Scenario(
            taskset=parsed.taskset,
            horizon=spec.horizon if spec.horizon is not None else parsed.horizon,
            faults=faults,
            treatment=TreatmentKind(spec.treatment) if spec.treatment else parsed.treatment,
            unit=parsed.unit,
        )
    raise ValueError(f"spec {spec.name!r} describes no scenario to simulate")


def _merged_sink(explicit: TraceSink | str | None) -> TraceSink | str | None:
    """Combine an explicit *trace_out* with the ambient obs config's
    sinks (file sink + metrics observer) into one tee."""
    cfg = obs_runtime.current()
    ambient = cfg.trace_sinks() if cfg is not None else []
    if not ambient:
        return explicit
    if explicit is None:
        return ambient[0] if len(ambient) == 1 else TeeSink(ambient)
    if hasattr(explicit, "emit"):
        return TeeSink([explicit, *ambient])  # type: ignore[list-item]
    from repro.obs.sinks import resolve_sink

    resolved = resolve_sink(explicit)
    assert resolved is not None
    return TeeSink([resolved, *ambient])


def run_simulation(
    taskset: TaskSet,
    *,
    horizon: int,
    faults: FaultModel | None = None,
    treatment: TreatmentKind | TreatmentPlan | None = None,
    vm: VMProfile = EXACT_VM,
    arrivals: Mapping[str, Sequence[int]] | None = None,
    sections: Sequence[SectionSpec] | None = None,
    protocol: LockProtocol = LockProtocol.ICPP,
    trace_out: TraceSink | str | None = None,
    profiler: EngineObserver | None = None,
) -> SimResult:
    """Run one concrete simulation on behalf of the experiments layer.

    Semantically identical to :func:`repro.sim.simulation.simulate`;
    exists so experiment modules have an executor-layer entry point
    (``RT006`` flags them calling ``simulate`` themselves).  This is
    also where the ambient observability config
    (:mod:`repro.obs.runtime`) attaches: the active trace sink, metrics
    observer and engine profiler are wired into every simulation that
    flows through the bridge.
    """
    cfg = obs_runtime.current()
    if profiler is None and cfg is not None:
        profiler = cfg.profiler
    wall0 = time.perf_counter_ns()  # noqa: RT002 - engine-throughput metadata, not simulated time
    result = simulate(
        taskset,
        horizon=horizon,
        faults=faults,
        treatment=treatment,
        vm=vm,
        arrivals=arrivals,
        sections=sections,
        protocol=protocol,
        trace_out=_merged_sink(trace_out),
        profiler=profiler,
    )
    if cfg is not None and cfg.metrics is not None:
        wall1 = time.perf_counter_ns()  # noqa: RT002 - engine-throughput metadata, not simulated time
        registry = cfg.metrics.registry
        registry.counter("engine_events_total").inc(result.events_processed)
        registry.counter("engine_runs_total").inc()
        if wall1 > wall0:
            registry.gauge("engine_events_per_s").set(
                result.events_processed * 1_000_000_000 // (wall1 - wall0)
            )
    return result


def run_mp_simulation(
    taskset: TaskSet,
    *,
    processors: int,
    heuristic: Heuristic = Heuristic.RESPONSE_TIME,
    horizon: int,
    faults: FaultModel | None = None,
    treatment: TreatmentKind | None = None,
    vm: VMProfile = EXACT_VM,
    migrate_on_fault: bool = False,
    pinned: Mapping[str, int] | None = None,
) -> MPSimResult:
    """Run one partitioned multiprocessor simulation for the
    experiments layer (the ``RT006``-sanctioned route to
    :func:`repro.sim.mp.simulate_partitioned`).

    The ambient observability config receives per-processor engine
    counters and busy-time gauges (labelled ``processor=<p>``) plus the
    aggregate event count, so a multiprocessor run shows up in the
    metrics registry with the same vocabulary as a uniprocessor one.
    """
    cfg = obs_runtime.current()
    wall0 = time.perf_counter_ns()  # noqa: RT002 - engine-throughput metadata, not simulated time
    result = simulate_partitioned(
        taskset,
        processors=processors,
        heuristic=heuristic,
        horizon=horizon,
        faults=faults,
        treatment=treatment,
        vm=vm,
        migrate_on_fault=migrate_on_fault,
        pinned=pinned,
    )
    if cfg is not None and cfg.metrics is not None:
        wall1 = time.perf_counter_ns()  # noqa: RT002 - engine-throughput metadata, not simulated time
        registry = cfg.metrics.registry
        registry.counter("engine_events_total").inc(result.events_processed)
        registry.counter("engine_runs_total").inc()
        registry.counter("mp_runs_total").inc()
        registry.counter("mp_migrations_total").inc(len(result.migrations))
        for p, shard in enumerate(result.per_processor):
            registry.counter(
                "mp_engine_events_total", processor=str(p)
            ).inc(shard.events_processed)
            registry.gauge("mp_busy_time_ns", processor=str(p)).set(shard.busy_time)
        if wall1 > wall0:
            registry.gauge("engine_events_per_s").set(
                result.events_processed * 1_000_000_000 // (wall1 - wall0)
            )
    return result


def simulate_spec(
    spec: ExperimentSpec,
    *,
    trace_out: TraceSink | str | None = None,
    profiler: EngineObserver | None = None,
) -> SimResult:
    """Resolve *spec* and run it."""
    scenario = resolve_scenario(spec)
    return run_simulation(
        scenario.taskset,
        horizon=scenario.horizon_or_default(),
        faults=scenario.faults,
        treatment=scenario.treatment,
        vm=resolve_vm(spec.vm),
        trace_out=trace_out,
        profiler=profiler,
    )
