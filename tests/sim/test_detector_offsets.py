"""Regression: detectors fire at the *recomputed* WCRT (paper §4.2).

Under the equitable-allowance treatment every task may overrun by the
same allowance ``A``; the detectors must therefore move from the
nominal WCRTs to the allowance-adjusted ones ("the detectors use the
response times recalculated with the allowance").  For Table 2
(``A = 11 ms``) that is 40/80/120 ms instead of 29/58/87 ms.

A regression that leaves detectors at the nominal offsets fires them
early — flagging healthy-but-allowed overruns as faults — which is
exactly the behaviour this traced scenario pins down.
"""

from __future__ import annotations

import pytest

from repro.core.treatments import TreatmentKind, plan_treatment
from repro.sim.simulation import simulate
from repro.sim.trace import EventKind
from repro.units import ms

#: Nominal WCRTs (paper Table 2) and their §4.2 adjusted counterparts
#: with the equitable allowance A = 11 ms.
NOMINAL = {"tau1": ms(29), "tau2": ms(58), "tau3": ms(87)}
ADJUSTED = {"tau1": ms(40), "tau2": ms(80), "tau3": ms(120)}


@pytest.fixture
def plan(table2):
    return plan_treatment(table2, TreatmentKind.EQUITABLE_ALLOWANCE)


class TestEquitableDetectorOffsets:
    def test_plan_places_detectors_at_adjusted_wcrt(self, plan):
        for name, offset in ADJUSTED.items():
            spec = plan.detectors[name]
            assert spec.offset == offset
            assert spec.offset != NOMINAL[name]

    def test_traced_fires_happen_at_release_plus_adjusted_wcrt(self, table2):
        result = simulate(
            table2,
            horizon=table2.hyperperiod(),
            treatment=TreatmentKind.EQUITABLE_ALLOWANCE,
        )
        fires = result.trace.of_kind(EventKind.DETECTOR_FIRE)
        assert fires, "no detector fired over a full hyperperiod"
        seen = set()
        for event in fires:
            release = table2[event.task].release_time(event.job)
            assert event.time - release == ADJUSTED[event.task], (
                f"{event.task}#{event.job}: detector at offset "
                f"{event.time - release}, expected adjusted WCRT "
                f"{ADJUSTED[event.task]}"
            )
            seen.add(event.task)
        assert seen == set(ADJUSTED), "every task's detector must fire"

    def test_no_fire_at_nominal_offset(self, table2):
        # The early (nominal-WCRT) instants must be silent: a healthy
        # job that is merely using its allowance is not a fault.
        result = simulate(
            table2,
            horizon=table2.hyperperiod(),
            treatment=TreatmentKind.EQUITABLE_ALLOWANCE,
        )
        for event in result.trace.of_kind(EventKind.DETECTOR_FIRE):
            release = table2[event.task].release_time(event.job)
            assert event.time - release != NOMINAL[event.task]
