"""SVG Gantt renderer for execution traces.

A dependency-free SVG writer producing publication-style versions of
the paper's Figures 3-7: one lane per task, execution rectangles,
release/deadline arrows, detector ticks and WCRT chevrons.  Files open
in any browser; useful when the ASCII charts are too coarse.
"""

from __future__ import annotations

from dataclasses import dataclass
from xml.sax.saxutils import escape

from repro.sim.simulation import SimResult
from repro.sim.trace import EventKind
from repro.units import MS

__all__ = ["SvgOptions", "render_svg"]

_LANE_H = 46
_MARGIN_L = 90
_MARGIN_T = 30
_MARGIN_B = 40
_EXEC_H = 18

_COLORS = ["#4878a8", "#c45c4a", "#5a9a6e", "#8a6caa", "#b0883f"]


@dataclass(frozen=True)
class SvgOptions:
    """Rendering window and canvas size."""

    start: int | None = None
    end: int | None = None
    width: int = 960
    title: str = ""


def render_svg(
    result: SimResult,
    options: SvgOptions = SvgOptions(),
    *,
    thresholds: dict[str, int] | None = None,
) -> str:
    """Render the run to an SVG document string."""
    start = options.start if options.start is not None else 0
    end = options.end if options.end is not None else result.horizon
    if end <= start:
        raise ValueError("end must be > start")
    names = [t.name for t in result.taskset]
    height = _MARGIN_T + _LANE_H * len(names) + _MARGIN_B
    plot_w = options.width - _MARGIN_L - 20

    def x(t: int) -> float:
        return _MARGIN_L + (t - start) * plot_w / (end - start)

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{options.width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{options.width}" height="{height}" fill="white"/>',
    ]
    if options.title:
        parts.append(
            f'<text x="{_MARGIN_L}" y="18" font-size="13" font-weight="bold">'
            f"{escape(options.title)}</text>"
        )

    for lane, name in enumerate(names):
        base_y = _MARGIN_T + lane * _LANE_H
        mid_y = base_y + _LANE_H - 14
        color = _COLORS[lane % len(_COLORS)]
        task = result.taskset[name]
        parts.append(
            f'<text x="8" y="{mid_y - 2}" font-weight="bold">{escape(name)}</text>'
        )
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{mid_y}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{mid_y}" stroke="#ccc"/>'
        )
        # Execution rectangles.
        for (b, e, _job) in result.trace.execution_intervals(name):
            if e <= start or b >= end:
                continue
            x0, x1 = x(max(b, start)), x(min(e, end))
            parts.append(
                f'<rect x="{x0:.1f}" y="{mid_y - _EXEC_H}" '
                f'width="{max(x1 - x0, 0.8):.1f}" height="{_EXEC_H}" '
                f'fill="{color}" fill-opacity="0.85"/>'
            )
        # Event markers.
        for e in result.trace.for_task(name):
            if not start <= e.time <= end:
                continue
            px = x(e.time)
            if e.kind is EventKind.RELEASE:
                parts.append(_arrow(px, mid_y, up=True))
                if thresholds and name in thresholds:
                    tx = e.time + thresholds[name]
                    if start <= tx <= end:
                        parts.append(_chevron(x(tx), mid_y))
                dl = e.time + task.deadline
                if start <= dl <= end:
                    parts.append(_arrow(x(dl), mid_y, up=False))
            elif e.kind is EventKind.DETECTOR_FIRE:
                parts.append(
                    f'<rect x="{px - 2.5:.1f}" y="{mid_y - _EXEC_H - 10}" '
                    f'width="5" height="5" fill="black"/>'
                )
            elif e.kind is EventKind.DEADLINE_MISS:
                parts.append(
                    f'<text x="{px - 4:.1f}" y="{mid_y - _EXEC_H - 12}" '
                    f'fill="#c00" font-weight="bold">!</text>'
                )
            elif e.kind is EventKind.STOP:
                parts.append(
                    f'<line x1="{px:.1f}" y1="{mid_y - _EXEC_H - 4}" '
                    f'x2="{px:.1f}" y2="{mid_y + 4}" stroke="#c00" stroke-width="2"/>'
                )

    # Time axis.
    axis_y = _MARGIN_T + _LANE_H * len(names) + 8
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{axis_y}" x2="{_MARGIN_L + plot_w}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    for i in range(6):
        t = start + (end - start) * i // 5
        px = x(t)
        parts.append(
            f'<line x1="{px:.1f}" y1="{axis_y}" x2="{px:.1f}" y2="{axis_y + 5}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<text x="{px - 10:.1f}" y="{axis_y + 18}">{t / MS:g} ms</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _arrow(px: float, mid_y: int, *, up: bool) -> str:
    """Release (up) / deadline (down) arrow, the paper's notation."""
    top = mid_y - _EXEC_H - 12
    if up:
        head = f"{px - 3:.1f},{top + 5} {px + 3:.1f},{top + 5} {px:.1f},{top}"
    else:
        head = f"{px - 3:.1f},{mid_y - 5} {px + 3:.1f},{mid_y - 5} {px:.1f},{mid_y}"
    return (
        f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" y2="{mid_y}" stroke="#555"/>'
        f'<polygon points="{head}" fill="#555"/>'
    )


def _chevron(px: float, mid_y: int) -> str:
    """The '>' worst-case response time mark."""
    y = mid_y - _EXEC_H - 8
    return (
        f'<path d="M {px - 4:.1f} {y - 4} L {px:.1f} {y} L {px - 4:.1f} {y + 4}" '
        f'fill="none" stroke="#222" stroke-width="1.6"/>'
    )
